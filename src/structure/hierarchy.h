// Rooted-tree hierarchies over keys (Section 3).
//
// Keys are the leaves of a tree; the range family consists of the leaf sets
// under internal nodes (IP prefixes, geographic areas, trouble-code
// subtrees, ...). Leaves are numbered in DFS order so that every node's leaf
// set is a contiguous rank interval — this linearization is used both by
// discrepancy checks and by kd-tree splits on hierarchy axes.

#ifndef SAS_STRUCTURE_HIERARCHY_H_
#define SAS_STRUCTURE_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace sas {

class Hierarchy {
 public:
  static constexpr int kNoParent = -1;

  /// Builds from a parent array: parent[0] must be kNoParent (node 0 is the
  /// root); every other parent[v] < v. Leaves (childless nodes) receive key
  /// ids in DFS order.
  static Hierarchy FromParents(std::vector<int> parent);

  /// Complete tree of the given depth and branching factor
  /// (depth 0 = a single leaf). Has branching^depth keys.
  static Hierarchy Balanced(int depth, int branching);

  /// Random tree with `num_leaves` leaves built by recursive splitting with
  /// branching factor uniform in [2, max_branching].
  static Hierarchy Random(std::size_t num_leaves, int max_branching,
                          Rng* rng);

  /// Path-compressed binary trie over distinct coordinates in a domain of
  /// `bits` bits (the IP-prefix hierarchy of Example 1). Key id k is the key
  /// of coords[k]; every internal node corresponds to a dyadic prefix range.
  static Hierarchy CompressedBinaryTrie(const std::vector<Coord>& coords,
                                        int bits);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::size_t num_keys() const { return keys_in_dfs_.size(); }
  int root() const { return 0; }

  int parent(int v) const { return nodes_[v].parent; }
  const std::vector<int>& children(int v) const { return children_[v]; }
  bool is_leaf(int v) const { return children_[v].empty(); }
  int depth(int v) const { return nodes_[v].depth; }

  /// Key stored at a leaf node (only valid when is_leaf(v)).
  KeyId key_of_leaf(int v) const { return nodes_[v].key; }
  int leaf_of_key(KeyId k) const { return leaf_of_key_[k]; }

  /// DFS leaf-rank interval of node v: the keys under v are exactly
  /// key_at_rank(r) for r in [leaf_begin(v), leaf_end(v)).
  std::size_t leaf_begin(int v) const { return nodes_[v].leaf_begin; }
  std::size_t leaf_end(int v) const { return nodes_[v].leaf_end; }

  KeyId key_at_rank(std::size_t r) const { return keys_in_dfs_[r]; }
  std::size_t rank_of_key(KeyId k) const { return rank_of_key_[k]; }

  /// Coordinate interval covered by node v. For tries this is the dyadic
  /// prefix range; for synthetic trees, the span of leaf coordinates (which
  /// generators lay out in DFS order). Only meaningful when the hierarchy
  /// was built over coordinates or given DFS-ordered coordinates.
  Interval coord_range(int v) const { return nodes_[v].range; }

  /// Coordinate of the leaf holding key k (builders over coordinates only).
  Coord coord_of_key(KeyId k) const {
    return nodes_[leaf_of_key_[k]].range.lo;
  }

  /// Re-assigns leaf coordinates (strictly increasing, indexed by DFS rank)
  /// and recomputes internal coordinate spans. Used by generators that
  /// spread a synthetic hierarchy's leaves over a larger coordinate domain.
  void SetLeafCoords(const std::vector<Coord>& coord_by_rank);

  /// Lowest common ancestor by parent walking (O(depth)).
  int Lca(int u, int v) const;

  /// All keys under node v, in DFS order.
  std::vector<KeyId> KeysUnder(int v) const;

 private:
  struct Node {
    int parent = kNoParent;
    KeyId key = 0;               // valid for leaves
    std::size_t leaf_begin = 0;  // DFS rank interval
    std::size_t leaf_end = 0;
    int depth = 0;
    Interval range;  // coordinate span (builders over coords)
  };

  /// Computes children lists, depths, DFS leaf ranks and (optionally)
  /// assigns key ids equal to DFS ranks when `assign_keys_by_dfs` is true.
  /// When `propagate_ranges` is true, internal coordinate spans are
  /// recomputed from the leaves (tries set their own dyadic ranges and skip
  /// this).
  void FinishBuild(bool assign_keys_by_dfs, bool propagate_ranges);

  std::vector<Node> nodes_;
  std::vector<std::vector<int>> children_;
  std::vector<int> leaf_of_key_;
  std::vector<KeyId> keys_in_dfs_;
  std::vector<std::size_t> rank_of_key_;
};

}  // namespace sas

#endif  // SAS_STRUCTURE_HIERARCHY_H_
