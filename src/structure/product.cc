#include "structure/product.h"

#include <algorithm>

namespace sas {

Interval IntersectIntervals(const Interval& a, const Interval& b) {
  Interval out{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  if (out.hi < out.lo) out.hi = out.lo;
  return out;
}

Box IntersectBoxes(const Box& a, const Box& b) {
  return Box{IntersectIntervals(a.x, b.x), IntersectIntervals(a.y, b.y)};
}

double IntervalOverlapFraction(const Interval& a, const Interval& b) {
  if (a.Empty()) return 0.0;
  const Interval inter = IntersectIntervals(a, b);
  return static_cast<double>(inter.Length()) /
         static_cast<double>(a.Length());
}

double BoxOverlapFraction(const Box& a, const Box& b) {
  return IntervalOverlapFraction(a.x, b.x) * IntervalOverlapFraction(a.y, b.y);
}

bool BoxesIntersect(const Box& a, const Box& b) {
  return !IntersectBoxes(a, b).Empty();
}

}  // namespace sas
