#include "structure/order.h"

#include <algorithm>
#include <numeric>

namespace sas {

std::vector<std::size_t> SortedOrder(const std::vector<Coord>& coords) {
  std::vector<std::size_t> order(coords.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return coords[a] < coords[b];
  });
  return order;
}

std::vector<std::pair<std::size_t, std::size_t>> AllIntervals(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(n * (n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) out.emplace_back(i, j);
  }
  return out;
}

}  // namespace sas
