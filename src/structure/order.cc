#include "structure/order.h"

#include <algorithm>
#include <numeric>

namespace sas {

std::vector<std::size_t> SortedOrder(const std::vector<Coord>& coords) {
  std::vector<std::size_t> order;
  SortedOrderInto(coords, &order);
  return order;
}

void SortedOrderInto(const std::vector<Coord>& coords,
                     std::vector<std::size_t>* out) {
  out->resize(coords.size());
  std::iota(out->begin(), out->end(), 0);
  // Index tie-break == stability when sorting distinct indices, and unlike
  // std::stable_sort the introsort needs no temporary buffer, keeping warm
  // callers allocation-free.
  std::sort(out->begin(), out->end(), [&](std::size_t a, std::size_t b) {
    return coords[a] != coords[b] ? coords[a] < coords[b] : a < b;
  });
}

std::vector<std::pair<std::size_t, std::size_t>> AllIntervals(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(n * (n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) out.emplace_back(i, j);
  }
  return out;
}

}  // namespace sas
