#include "structure/hierarchy.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace sas {

void Hierarchy::FinishBuild(bool assign_keys_by_dfs, bool propagate_ranges) {
  const int n = num_nodes();
  children_.assign(n, {});
  for (int v = 1; v < n; ++v) {
    assert(nodes_[v].parent >= 0 && nodes_[v].parent < v);
    children_[nodes_[v].parent].push_back(v);
  }
  assert(n == 0 || nodes_[0].parent == kNoParent);

  // Iterative DFS: assign depths and leaf-rank intervals.
  keys_in_dfs_.clear();
  std::vector<int> stack;
  std::vector<int> order;  // nodes in DFS pre-order
  if (n > 0) stack.push_back(0);
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    nodes_[v].depth = (v == 0) ? 0 : nodes_[nodes_[v].parent].depth + 1;
    nodes_[v].leaf_begin = 0;
    nodes_[v].leaf_end = 0;
    // Push children in reverse so DFS visits them left-to-right.
    const auto& ch = children_[v];
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  // Leaf ranks in DFS order.
  std::size_t rank = 0;
  for (int v : order) {
    if (is_leaf(v)) {
      if (assign_keys_by_dfs) nodes_[v].key = static_cast<KeyId>(rank);
      nodes_[v].leaf_begin = rank;
      nodes_[v].leaf_end = rank + 1;
      ++rank;
    }
  }
  // Internal intervals: process in reverse pre-order so children are done.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    if (is_leaf(v)) continue;
    nodes_[v].leaf_begin = nodes_[children_[v].front()].leaf_begin;
    nodes_[v].leaf_end = nodes_[children_[v].back()].leaf_end;
    if (propagate_ranges) {
      // Coordinate span of descendants (coord-built trees; tries keep
      // their dyadic prefix ranges instead).
      nodes_[v].range.lo = nodes_[children_[v].front()].range.lo;
      nodes_[v].range.hi = nodes_[children_[v].back()].range.hi;
    }
  }

  keys_in_dfs_.resize(rank);
  leaf_of_key_.assign(rank, -1);
  rank_of_key_.assign(rank, 0);
  for (int v : order) {
    if (!is_leaf(v)) continue;
    const KeyId k = nodes_[v].key;
    assert(k < rank);
    keys_in_dfs_[nodes_[v].leaf_begin] = k;
    leaf_of_key_[k] = v;
    rank_of_key_[k] = nodes_[v].leaf_begin;
  }
}

Hierarchy Hierarchy::FromParents(std::vector<int> parent) {
  Hierarchy h;
  h.nodes_.resize(parent.size());
  for (std::size_t v = 0; v < parent.size(); ++v) {
    h.nodes_[v].parent = parent[v];
  }
  h.FinishBuild(/*assign_keys_by_dfs=*/true, /*propagate_ranges=*/false);
  // Default coordinate layout: leaf coordinate = DFS rank.
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (h.is_leaf(v)) {
      h.nodes_[v].range = {h.nodes_[v].leaf_begin, h.nodes_[v].leaf_begin + 1};
    }
  }
  h.FinishBuild(/*assign_keys_by_dfs=*/true, /*propagate_ranges=*/true);
  return h;
}

Hierarchy Hierarchy::Balanced(int depth, int branching) {
  assert(depth >= 0 && branching >= 2);
  std::vector<int> parent{kNoParent};
  // Level-order construction.
  std::size_t level_begin = 0;
  std::size_t level_size = 1;
  for (int d = 0; d < depth; ++d) {
    const std::size_t next_begin = parent.size();
    for (std::size_t v = level_begin; v < level_begin + level_size; ++v) {
      for (int c = 0; c < branching; ++c) {
        parent.push_back(static_cast<int>(v));
      }
    }
    level_begin = next_begin;
    level_size *= branching;
  }
  return FromParents(std::move(parent));
}

Hierarchy Hierarchy::Random(std::size_t num_leaves, int max_branching,
                            Rng* rng) {
  assert(num_leaves >= 1 && max_branching >= 2);
  // Recursive splitting, materialized iteratively with an explicit stack of
  // (node, leaves to distribute) tasks. Children are appended after their
  // parent, so parent[v] < v holds.
  std::vector<int> parent{kNoParent};
  struct Task {
    int node;
    std::size_t leaves;
  };
  std::vector<Task> stack{{0, num_leaves}};
  while (!stack.empty()) {
    const Task t = stack.back();
    stack.pop_back();
    if (t.leaves <= 1) continue;  // node stays a leaf
    const std::size_t fan_limit =
        std::min<std::size_t>(static_cast<std::size_t>(max_branching),
                              t.leaves);
    const std::size_t fan = 2 + rng->NextBounded(fan_limit - 1);
    // Split t.leaves into `fan` positive parts.
    std::vector<std::size_t> part(fan, 1);
    for (std::size_t extra = t.leaves - fan; extra > 0; --extra) {
      part[rng->NextBounded(fan)] += 1;
    }
    for (std::size_t c = 0; c < fan; ++c) {
      const int child = static_cast<int>(parent.size());
      parent.push_back(t.node);
      stack.push_back({child, part[c]});
    }
  }
  return FromParents(std::move(parent));
}

namespace {

/// Recursive task for the compressed-trie build over sorted coordinates.
struct TrieTask {
  int node;
  std::size_t lo, hi;  // range in the sorted coordinate array
};

}  // namespace

Hierarchy Hierarchy::CompressedBinaryTrie(const std::vector<Coord>& coords,
                                          int bits) {
  assert(!coords.empty());
  assert(bits >= 1 && bits <= 64);
  (void)bits;
  const std::size_t n = coords.size();
  // Sort coordinate indices; coordinates must be distinct.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return coords[a] < coords[b]; });
  for (std::size_t i = 1; i < n; ++i) {
    assert(coords[idx[i - 1]] < coords[idx[i]] && "coords must be distinct");
    (void)i;
  }

  Hierarchy h;
  h.nodes_.reserve(2 * n);
  h.nodes_.push_back({});  // root
  std::vector<TrieTask> stack{{0, 0, n}};
  while (!stack.empty()) {
    const TrieTask t = stack.back();
    stack.pop_back();
    const Coord lo_c = coords[idx[t.lo]];
    const Coord hi_c = coords[idx[t.hi - 1]];
    if (t.hi - t.lo == 1) {
      h.nodes_[t.node].key = static_cast<KeyId>(idx[t.lo]);
      h.nodes_[t.node].range = {lo_c, lo_c + 1};
      continue;
    }
    // Highest differing bit determines this node's dyadic prefix range and
    // the split point.
    const Coord diff = lo_c ^ hi_c;
    // 1-based index of the top set bit (diff != 0 here since lo_c != hi_c);
    // countl_zero rather than bit_width because the latter's return type
    // varies across libstdc++ versions (LWG 3656).
    const int hbit = 64 - std::countl_zero(diff);
    Coord block, base;
    if (hbit >= 64) {
      base = 0;
      block = ~Coord{0};  // full 64-bit domain (saturated upper bound)
    } else {
      block = Coord{1} << hbit;
      base = (lo_c >> hbit) << hbit;
    }
    h.nodes_[t.node].range = {base, base + block};
    const Coord mid_threshold = base + block / 2 + block % 2;
    // Binary search for the first coordinate >= mid_threshold.
    std::size_t lo = t.lo, hi = t.hi;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (coords[idx[mid]] < mid_threshold) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    assert(lo > t.lo && lo < t.hi);
    const int left = static_cast<int>(h.nodes_.size());
    h.nodes_.push_back({});
    h.nodes_[left].parent = t.node;
    const int right = static_cast<int>(h.nodes_.size());
    h.nodes_.push_back({});
    h.nodes_[right].parent = t.node;
    // Push right first so DFS pre-order visits left (smaller coords) first.
    stack.push_back({right, lo, t.hi});
    stack.push_back({left, t.lo, lo});
  }
  h.FinishBuild(/*assign_keys_by_dfs=*/false, /*propagate_ranges=*/false);
  return h;
}

void Hierarchy::SetLeafCoords(const std::vector<Coord>& coord_by_rank) {
  assert(coord_by_rank.size() == num_keys());
  for (std::size_t r = 1; r < coord_by_rank.size(); ++r) {
    assert(coord_by_rank[r - 1] < coord_by_rank[r]);
    (void)r;
  }
  // Builders guarantee parent(v) < v, so a reverse scan sees children
  // before parents.
  const int n = num_nodes();
  for (int v = n - 1; v >= 0; --v) {
    if (is_leaf(v)) {
      const Coord c = coord_by_rank[nodes_[v].leaf_begin];
      nodes_[v].range = {c, c + 1};
    } else {
      nodes_[v].range.lo = nodes_[children_[v].front()].range.lo;
      nodes_[v].range.hi = nodes_[children_[v].back()].range.hi;
    }
  }
}

int Hierarchy::Lca(int u, int v) const {
  while (depth(u) > depth(v)) u = parent(u);
  while (depth(v) > depth(u)) v = parent(v);
  while (u != v) {
    u = parent(u);
    v = parent(v);
  }
  return u;
}

std::vector<KeyId> Hierarchy::KeysUnder(int v) const {
  std::vector<KeyId> out;
  out.reserve(leaf_end(v) - leaf_begin(v));
  for (std::size_t r = leaf_begin(v); r < leaf_end(v); ++r) {
    out.push_back(keys_in_dfs_[r]);
  }
  return out;
}

}  // namespace sas
