// Product structures (Section 4): d-dimensional domains where each axis is
// an order or a hierarchy, and ranges are axis-parallel boxes.
//
// This library specializes to d = 2 (the dimensionality of both evaluation
// datasets); the per-axis machinery (hierarchies, dyadic ranges) is shared
// with the one-dimensional code paths.

#ifndef SAS_STRUCTURE_PRODUCT_H_
#define SAS_STRUCTURE_PRODUCT_H_

#include <memory>
#include <vector>

#include "core/types.h"
#include "structure/hierarchy.h"

namespace sas {

/// Kind of structure on one axis of a product domain.
enum class AxisKind {
  kOrder,      // linear order on coordinates; ranges are intervals
  kHierarchy,  // hierarchy whose leaf coordinates are laid out in DFS order
};

/// Descriptor of one axis: its size (number of addressable coordinates,
/// usually a power of two) and its structure. The hierarchy pointer (when
/// present) is owned by the dataset; its leaves carry coordinate ranges so
/// hierarchy nodes map to intervals.
struct AxisDomain {
  AxisKind kind = AxisKind::kOrder;
  int bits = 32;                        // domain size = 2^bits
  const Hierarchy* hierarchy = nullptr;  // set when kind == kHierarchy

  Coord size() const { return bits >= 64 ? ~Coord{0} : (Coord{1} << bits); }
};

/// A two-dimensional product domain.
struct ProductDomain2D {
  AxisDomain x;
  AxisDomain y;

  Box FullBox() const {
    return Box{{0, x.size()}, {0, y.size()}};
  }
};

/// Intersection helpers for boxes/intervals.
Interval IntersectIntervals(const Interval& a, const Interval& b);
Box IntersectBoxes(const Box& a, const Box& b);

/// Fraction of interval `a` covered by `b` (0 when a is empty).
double IntervalOverlapFraction(const Interval& a, const Interval& b);

/// Fraction of box `a`'s area covered by `b` (0 when a is empty).
double BoxOverlapFraction(const Box& a, const Box& b);

/// True if the two boxes share any point.
bool BoxesIntersect(const Box& a, const Box& b);

}  // namespace sas

#endif  // SAS_STRUCTURE_PRODUCT_H_
