// Order structures (Section 3): keys with a linear order whose range family
// is the set of all intervals (and, as a special case, all prefixes).

#ifndef SAS_STRUCTURE_ORDER_H_
#define SAS_STRUCTURE_ORDER_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace sas {

/// Returns key indices 0..n-1 sorted by coordinate (stable; ties keep input
/// order, so duplicate coordinates are handled deterministically).
std::vector<std::size_t> SortedOrder(const std::vector<Coord>& coords);

/// As SortedOrder, into a caller-owned vector (capacity reused, so warm
/// callers sort allocation-free).
void SortedOrderInto(const std::vector<Coord>& coords,
                     std::vector<std::size_t>* out);

/// Permutes `values` into the order given by `order` (out-of-place).
template <typename T>
std::vector<T> ApplyOrder(const std::vector<std::size_t>& order,
                          const std::vector<T>& values) {
  std::vector<T> out;
  out.reserve(order.size());
  for (std::size_t i : order) out.push_back(values[i]);
  return out;
}

/// All intervals [i, j) over n positions — the order structure's range
/// family, enumerated for small-n exhaustive tests. O(n^2) ranges.
std::vector<std::pair<std::size_t, std::size_t>> AllIntervals(std::size_t n);

}  // namespace sas

#endif  // SAS_STRUCTURE_ORDER_H_
