// Ablation: box-range discrepancy of 2-D samples (Section 4). Compares the
// kd-based structure-aware product sampler against oblivious VarOpt at
// equal sample size, as RMS and max count-discrepancy over random boxes;
// also sweeps sample size to show the aware advantage grows with s
// (aware: O(s^(1/4)) vs obliv: O(sqrt(s)) on heavy boxes).

#include <cmath>
#include <set>

#include "api/registry.h"
#include "core/ipps.h"
#include "eval/table.h"
#include "sampling/varopt_offline.h"

int main(int argc, char** argv) {
  using namespace sas;
  (void)argc;
  (void)argv;
  std::printf("=== Ablation: 2-D box discrepancy, aware vs oblivious ===\n");
  Rng rng(777);
  const std::size_t n = 4000;
  const Coord domain = 1 << 16;
  std::set<std::pair<Coord, Coord>> seen;
  while (seen.size() < n) {
    seen.insert({rng.NextBounded(domain), rng.NextBounded(domain)});
  }
  std::vector<WeightedKey> items;
  KeyId id = 0;
  for (const auto& [x, y] : seen) {
    items.push_back({id++, rng.NextPareto(1.3), {x, y}});
  }

  std::vector<Box> boxes;
  for (int i = 0; i < 40; ++i) {
    const Coord x0 = rng.NextBounded(domain / 2);
    const Coord y0 = rng.NextBounded(domain / 2);
    const Coord wx = 1 + rng.NextBounded(domain / 2);
    const Coord wy = 1 + rng.NextBounded(domain / 2);
    boxes.push_back({{x0, x0 + wx}, {y0, y0 + wy}});
  }

  Table table({"s", "scheme", "rms_disc", "max_disc"});
  for (double s : {50.0, 200.0, 800.0}) {
    std::vector<Weight> w;
    for (const auto& it : items) w.push_back(it.weight);
    const double tau = SolveTau(w, s);
    std::vector<double> probs;
    IppsProbabilities(w, tau, &probs);
    std::vector<double> expected(boxes.size(), 0.0);
    for (std::size_t b = 0; b < boxes.size(); ++b) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (boxes[b].Contains(items[i].pt)) expected[b] += probs[i];
      }
    }
    auto measure = [&](auto&& sampler, const char* name) {
      double sq = 0.0, worst = 0.0;
      const int trials = 60;
      for (int t = 0; t < trials; ++t) {
        const Sample sample = sampler();
        for (std::size_t b = 0; b < boxes.size(); ++b) {
          const double d =
              static_cast<double>(sample.CountInBox(boxes[b])) - expected[b];
          sq += d * d;
          worst = std::max(worst, std::fabs(d));
        }
      }
      table.AddRow({Table::Num(s), name,
                    Table::Num(std::sqrt(sq / (trials * boxes.size()))),
                    Table::Num(worst)});
    };
    measure(
        [&] {
          SummarizerConfig cfg;
          cfg.s = s;
          cfg.seed = rng.Next();
          cfg.structure = StructureSpec::Product();
          return BuildSummary(keys::kProduct, cfg, items)
              ->AsSample()
              ->sample();
        },
        "aware_kd");
    measure([&] { return VarOptOffline(items, s, &rng); }, "obliv");
  }
  table.Print();
  return 0;
}
