// Ablation: dimension dependence of box discrepancy (Section 4). The
// structure-aware product sample has box discrepancy concentrated around
// s^((d-1)/(2d)): sqrt growth exponents 1/4 (d=2), 1/3 (d=3), 3/8 (d=4) —
// always below the structure-oblivious 1/2. Measured as RMS box-count
// discrepancy at increasing sample sizes, for d = 1..4, with the oblivious
// (random-order aggregation) figure alongside.

#include <cmath>
#include <set>

#include "api/registry.h"
#include "aware/kd_nd.h"  // BoxN / BoxNContains helpers
#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  (void)argc;
  (void)argv;
  std::printf("=== Ablation: box discrepancy vs dimension "
              "(RMS over random boxes) ===\n");
  Rng rng(99);
  Table table({"d", "s", "aware_rms", "obliv_rms", "aware/s^((d-1)/2d)"});
  for (int d = 1; d <= 4; ++d) {
    // Points on a d-dimensional random cloud. The per-axis domain shrinks
    // with d so the total space stays large enough for n distinct points
    // (d=1 needs 2^20 coordinates; d=4 only 2^5 per axis).
    const std::size_t n = 4096;
    const int axis_bits = std::max(5, 20 / d);
    const Coord domain = Coord{1} << axis_bits;
    std::set<std::vector<Coord>> seen;
    while (seen.size() < n) {
      std::vector<Coord> pt(d);
      for (auto& c : pt) c = rng.NextBounded(domain);
      seen.insert(pt);
    }
    std::vector<Coord> coords;
    std::vector<Weight> weights;
    for (const auto& pt : seen) {
      for (Coord c : pt) coords.push_back(c);
      weights.push_back(rng.NextPareto(1.4));
    }

    std::vector<BoxN> boxes;
    for (int b = 0; b < 25; ++b) {
      BoxN box(d);
      for (int a = 0; a < d; ++a) {
        const Coord lo = rng.NextBounded(domain / 2);
        box[a] = {lo, lo + 1 + rng.NextBounded(domain / 2)};
      }
      boxes.push_back(box);
    }

    for (double s : {64.0, 256.0, 1024.0}) {
      const double tau = SolveTau(weights, s);
      std::vector<double> probs;
      IppsProbabilities(weights, tau, &probs);
      std::vector<double> expected(boxes.size(), 0.0);
      for (std::size_t b = 0; b < boxes.size(); ++b) {
        for (std::size_t i = 0; i < n; ++i) {
          if (BoxNContains(boxes[b], &coords[i * d])) {
            expected[b] += probs[i];
          }
        }
      }
      auto rms = [&](auto&& chooser) {
        double sq = 0.0;
        const int trials = 40;
        for (int t = 0; t < trials; ++t) {
          const std::vector<std::size_t> chosen = chooser();
          std::vector<char> in(n, 0);
          for (std::size_t i : chosen) in[i] = 1;
          for (std::size_t b = 0; b < boxes.size(); ++b) {
            double actual = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
              if (in[i] && BoxNContains(boxes[b], &coords[i * d])) {
                actual += 1.0;
              }
            }
            sq += (actual - expected[b]) * (actual - expected[b]);
          }
        }
        return std::sqrt(sq / (trials * boxes.size()));
      };
      const double aware = rms([&] {
        SummarizerConfig cfg;
        cfg.s = s;
        cfg.seed = rng.Next();
        cfg.structure = StructureSpec::Nd(d);
        auto builder = MakeSummarizer(keys::kNd, cfg);
        for (std::size_t i = 0; i < n; ++i) {
          builder->AddCoords(&coords[i * d], d, weights[i]);
        }
        const auto summary = builder->Finalize();
        std::vector<std::size_t> chosen;
        for (const auto& e : summary->AsSample()->sample().entries()) {
          chosen.push_back(e.id);
        }
        return chosen;
      });
      const double obliv = rms([&] {
        std::vector<double> work = probs;
        for (auto& q : work) q = SnapProbability(q);
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        for (std::size_t i = n; i > 1; --i) {
          std::swap(order[i - 1], order[rng.NextBounded(i)]);
        }
        const std::size_t leftover =
            ChainAggregate(&work, order, kNoEntry, &rng);
        ResolveResidual(&work, leftover, &rng);
        std::vector<std::size_t> chosen;
        for (std::size_t i = 0; i < n; ++i) {
          if (work[i] == 1.0) chosen.push_back(i);
        }
        return chosen;
      });
      const double exponent = (d - 1.0) / (2.0 * d);
      table.AddRow({Table::Int(d), Table::Num(s), Table::Num(aware),
                    Table::Num(obliv),
                    Table::Num(aware / std::pow(s, exponent))});
    }
  }
  table.Print();
  std::printf("(aware normalized column should be ~flat per dimension; "
              "d=1 gives O(1) discrepancy)\n");
  return 0;
}
