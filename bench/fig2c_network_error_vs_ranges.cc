// Figure 2(c): Network data, absolute error vs number of ranges per query,
// holding total query weight roughly fixed (~0.12 of the data weight).
//
// Paper finding: obliv is flat in the number of ranges; aware is several
// times better at few ranges and converges to obliv at ~40+ ranges.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 2(c): Network, abs error vs ranges per query "
              "(fixed total weight ~0.12) ===\n");
  const Dataset2D ds = bench::BenchNetwork(args);
  const WeightPartition part(ds.items, ds.domain);
  const std::size_t s = static_cast<std::size_t>(args.Get("s", 2700));

  const auto built = BuildMethods(ds, s, DefaultMethods(), 78);
  Table table({"ranges", "mean_weight", "method", "abs_error"});
  // ranges * 2^-depth ~ 0.12 => depth = log2(ranges / 0.12).
  for (int ranges : {1, 2, 4, 8, 16, 32, 64}) {
    int depth = 0;
    while ((static_cast<double>(ranges) / (1 << depth)) > 0.12) ++depth;
    Rng qrng(4000 + ranges);
    const QueryBattery battery = UniformWeightQueries(
        ds.items, part, static_cast<int>(args.Get("queries", 50)), ranges,
        depth, &qrng);
    double mean_weight = 0.0;
    for (const auto& q : battery.queries) mean_weight += q.exact;
    mean_weight /= battery.queries.size() * battery.data_total;
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Int(ranges), Table::Num(mean_weight), r.method,
                    Table::Num(r.errors.mean_abs)});
    }
  }
  table.Print();
  return 0;
}
