// Micro-benchmarks (google-benchmark) for the core primitives: pair
// aggregation, streaming threshold, streaming VarOpt updates, kd-tree
// construction, and sample query scans. These quantify the per-item costs
// that drive the Figure 3 throughput comparisons.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <string_view>
#include <vector>

#include "api/registry.h"
#include "aware/kd_hierarchy.h"
#include "aware/order_summarizer.h"
#include "aware/product_summarizer.h"
#include "aware/summarize_scratch.h"
#include "aware/two_pass.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"
#include "core/simd.h"
#include "core/telemetry.h"
#include "sampling/stream_varopt.h"

// Global allocation counter: every operator new in the process bumps it, so
// a benchmark can assert a hot path is allocation-free in steady state by
// differencing the counter around the timed loop (see BM_SolveTau).
static std::atomic<std::size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // C11 aligned_alloc may reject sizes that are not a multiple of the
  // alignment; round up (glibc tolerates it, strict platforms do not).
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sas {
namespace {


std::vector<Weight> ParetoWeights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Weight> w(n);
  for (auto& x : w) x = rng.NextPareto(1.2);
  return w;
}

void BM_PairAggregate(benchmark::State& state) {
  Rng rng(1);
  double a = 0.4, b = 0.7;
  for (auto _ : state) {
    double x = a, y = b;
    PairAggregate(&x, &y, &rng);
    benchmark::DoNotOptimize(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_PairAggregate);

void BM_StreamTauPush(benchmark::State& state) {
  Rng rng(2);
  std::vector<Weight> weights(1 << 16);
  for (auto& w : weights) w = rng.NextPareto(1.2);
  std::size_t i = 0;
  StreamTau st(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    st.Push(weights[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamTauPush)->Arg(100)->Arg(10000);

void BM_StreamVarOptPush(benchmark::State& state) {
  Rng rng(3);
  std::vector<WeightedKey> items(1 << 16);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  StreamVarOpt sv(static_cast<std::size_t>(state.range(0)), Rng(4));
  std::size_t i = 0;
  for (auto _ : state) {
    sv.Push(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamVarOptPush)->Arg(100)->Arg(10000);

void BM_SolveTau(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Weight> weights = ParetoWeights(n, 11);
  const double s = static_cast<double>(n) / 100.0;
  // Warm up once so one-time scratch growth is not charged to the loop;
  // the steady state must then be allocation-free.
  benchmark::DoNotOptimize(SolveTau(weights, s));
  const std::size_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTau(weights, s));
  }
  const std::size_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveTau)->Arg(1000)->Arg(100000);

void BM_ChainAggregate(benchmark::State& state) {
  // Full order-structure aggregation pass over n open probabilities: the
  // ChainAggregate hot loop as driven by OrderSummarize (Algorithm 5).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Weight> weights = ParetoWeights(n, 12);
  const double tau = SolveTau(weights, static_cast<double>(n) / 100.0);
  std::vector<double> probs0;
  IppsProbabilities(weights, tau, &probs0);
  for (auto& q : probs0) q = SnapProbability(q);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(13);
  std::vector<double> work;
  for (auto _ : state) {
    work = probs0;
    OrderAggregate(&work, order, &rng);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChainAggregate)->Arg(1000)->Arg(100000);

void BM_IppsFill(benchmark::State& state) {
  // The dispatched probability-fill kernel (probs[i] = min{1, w[i]/tau} +
  // sum) on its own, the inner loop of IppsProbabilities and the StreamTau
  // rebuild. bytes_per_second counts the streamed read + write.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Weight> weights = ParetoWeights(n, 21);
  const double tau = SolveTau(weights, static_cast<double>(n) / 100.0);
  std::vector<double> probs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::FillIppsProbabilities(weights.data(), n, tau, probs.data()));
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 2 * sizeof(double));
  state.counters["simd"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_IppsFill)->Arg(1000)->Arg(100000);

void BM_KdMedianScan(benchmark::State& state) {
  // The weighted-median argmin scan that dominates kd node splits: one
  // pass over the prefix sums with the duplicate-boundary mask.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  std::vector<Coord> vals(n);
  Coord v = 0;
  for (auto& x : vals) {
    v += rng.NextBounded(3);
    x = v;
  }
  std::vector<double> prefix(n);
  double run = 0.0;
  for (auto& p : prefix) {
    run += 0.01 + 0.98 * rng.NextDouble();
    p = run;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::MinGapScan(prefix.data(), vals.data(), n, run));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n *
                          (sizeof(double) + sizeof(Coord)));
  state.counters["simd"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_KdMedianScan)->Arg(1000)->Arg(100000);

void BM_FillDoubles(benchmark::State& state) {
  // Block draw generation behind RngStream: xoshiro raw output plus the
  // dispatched u64 -> [0,1) conversion.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  std::vector<double> out(n);
  for (auto _ : state) {
    rng.FillDoubles(out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * sizeof(double));
  state.counters["simd"] =
      static_cast<double>(static_cast<int>(simd::ActiveLevel()));
}
BENCHMARK(BM_FillDoubles)->Arg(1000)->Arg(100000);

void BM_KdBuild(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Point2D> pts(n);
  std::vector<double> mass(n, 1.0);
  for (auto& p : pts) {
    p = {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KdHierarchy::Build(pts, mass));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdBuild)->Arg(1000)->Arg(10000);

void BM_KdBuildArena(benchmark::State& state) {
  // Same build as BM_KdBuild but reusing one caller-owned scratch workspace
  // across builds, the way the summarizer hot paths drive it.
  Rng rng(5);
  const std::size_t n = 10000;
  std::vector<Point2D> pts(n);
  std::vector<double> mass(n, 1.0);
  for (auto& p : pts) {
    p = {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)};
  }
  KdBuildScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KdHierarchy::Build(pts, mass, &scratch));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdBuildArena);

void BM_KdLocate(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 10000;
  std::vector<Point2D> pts(n);
  std::vector<double> mass(n, 1.0);
  for (auto& p : pts) {
    p = {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)};
  }
  const KdHierarchy tree = KdHierarchy::Build(pts, mass);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.LocateLeaf(pts[i++ % n]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdLocate);

void BM_SampleBoxScan(benchmark::State& state) {
  Rng rng(7);
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  std::vector<WeightedKey> entries(s);
  for (std::size_t i = 0; i < s; ++i) {
    entries[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                  {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  const Sample sample(1.0, std::move(entries));
  const Box box{{0, 1 << 19}, {0, 1 << 19}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample.EstimateBox(box));
  }
  state.SetItemsProcessed(state.iterations() * s);
}
BENCHMARK(BM_SampleBoxScan)->Arg(100)->Arg(10000);

void BM_TwoPassBuild(benchmark::State& state) {
  Rng rng(8);
  const std::size_t n = 20000;
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(keys::kAware, cfg);
    builder->AddBatch(items);
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TwoPassBuild);

template <typename SummarizeInto>
void SummarizerRebuildLoop(benchmark::State& state, SummarizeInto fn) {
  // Steady-state rebuild through the scratch-backed Into entry points, the
  // cycle the streaming/windowed engines drive every refresh: persistent
  // SummarizeScratch + SummarizeOutput, one warm-up build to size the
  // buffers, then the timed loop must allocate nothing (allocs_per_iter is
  // the acceptance counter — 0 in steady state).
  const std::size_t n = 10000;
  Rng rng(31);
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  const double s = 500.0;
  Rng draws(32);
  SummarizeScratch scratch;
  SummarizeOutput out;
  fn(items, s, &draws, &scratch, &out);  // warm-up: grows scratch once
  const std::size_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    fn(items, s, &draws, &scratch, &out);
    benchmark::DoNotOptimize(out.chosen.data());
  }
  const std::size_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_OrderRebuild(benchmark::State& state) {
  SummarizerRebuildLoop(state, OrderSummarizeInto);
}
BENCHMARK(BM_OrderRebuild);

void BM_ProductRebuild(benchmark::State& state) {
  SummarizerRebuildLoop(state, ProductSummarizeInto);
}
BENCHMARK(BM_ProductRebuild);

void BM_CounterInc(benchmark::State& state) {
  // Armed-telemetry cost of one counter bump: a relaxed fetch_add on a
  // cache-line-padded atomic, the per-event price every instrumented site
  // pays when telemetry is on.
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);
  telemetry::Counter* c = telemetry::GetCounter("bench.counter");
  for (auto _ : state) {
    c->Inc();
  }
  benchmark::DoNotOptimize(c->value());
  telemetry::SetEnabled(was_enabled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_TelemetrySpan(benchmark::State& state) {
  // Full armed span lifecycle: two monotonic clock reads, a histogram
  // Observe, and a trace-ring append — the per-span cost of instrumenting
  // a seal/merge/query section.
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);
  telemetry::Histogram* h = telemetry::GetHistogram("bench.span_ns");
  for (auto _ : state) {
    telemetry::Span span("bench.span", h);
    benchmark::DoNotOptimize(&span);
  }
  telemetry::SetEnabled(was_enabled);
  telemetry::ClearTraceEvents();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpan);

void BM_TelemetrySpanDisarmed(benchmark::State& state) {
  // The same span with telemetry globally off: one relaxed load and a
  // branch, the whole per-site cost of a disarmed build (the zero-overhead
  // claim in docs/observability.md).
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(false);
  telemetry::Histogram* h = telemetry::GetHistogram("bench.span_ns");
  for (auto _ : state) {
    telemetry::Span span("bench.span", h);
    benchmark::DoNotOptimize(&span);
  }
  telemetry::SetEnabled(was_enabled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetrySpanDisarmed);

void BM_RegistryMake(benchmark::State& state) {
  // Per-build overhead of the registry factory path (lookup + validation +
  // builder allocation) — the cost every call site pays over calling the
  // underlying function directly.
  SummarizerConfig cfg;
  cfg.s = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSummarizer(keys::kProduct, cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryMake);

}  // namespace
}  // namespace sas

// Custom main instead of BENCHMARK_MAIN: single-binary SIMD A/B.
// SAS_SIMD_LEVEL=scalar pins the dispatcher to the scalar reference before
// any benchmark runs (SAS_SIMD_LEVEL=avx2 asks for AVX2 and silently keeps
// the best supported level when unavailable); the default is
// simd::DetectLevel(), i.e. the fastest level this binary/host has.
int main(int argc, char** argv) {
  if (const char* level = std::getenv("SAS_SIMD_LEVEL")) {
    sas::simd::SetLevel(std::string_view(level) == "scalar"
                            ? sas::simd::Level::kScalar
                            : sas::simd::Level::kAvx2);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
