// Micro-benchmarks (google-benchmark) for the core primitives: pair
// aggregation, streaming threshold, streaming VarOpt updates, kd-tree
// construction, and sample query scans. These quantify the per-item costs
// that drive the Figure 3 throughput comparisons.

#include <benchmark/benchmark.h>

#include <vector>

#include "api/registry.h"
#include "aware/kd_hierarchy.h"
#include "aware/two_pass.h"
#include "core/ipps.h"
#include "core/pair_aggregate.h"
#include "core/random.h"
#include "sampling/stream_varopt.h"

namespace sas {
namespace {

void BM_PairAggregate(benchmark::State& state) {
  Rng rng(1);
  double a = 0.4, b = 0.7;
  for (auto _ : state) {
    double x = a, y = b;
    PairAggregate(&x, &y, &rng);
    benchmark::DoNotOptimize(x);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_PairAggregate);

void BM_StreamTauPush(benchmark::State& state) {
  Rng rng(2);
  std::vector<Weight> weights(1 << 16);
  for (auto& w : weights) w = rng.NextPareto(1.2);
  std::size_t i = 0;
  StreamTau st(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    st.Push(weights[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamTauPush)->Arg(100)->Arg(10000);

void BM_StreamVarOptPush(benchmark::State& state) {
  Rng rng(3);
  std::vector<WeightedKey> items(1 << 16);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  StreamVarOpt sv(static_cast<std::size_t>(state.range(0)), Rng(4));
  std::size_t i = 0;
  for (auto _ : state) {
    sv.Push(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamVarOptPush)->Arg(100)->Arg(10000);

void BM_KdBuild(benchmark::State& state) {
  Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Point2D> pts(n);
  std::vector<double> mass(n, 1.0);
  for (auto& p : pts) {
    p = {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KdHierarchy::Build(pts, mass));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdBuild)->Arg(1000)->Arg(10000);

void BM_KdLocate(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 10000;
  std::vector<Point2D> pts(n);
  std::vector<double> mass(n, 1.0);
  for (auto& p : pts) {
    p = {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)};
  }
  const KdHierarchy tree = KdHierarchy::Build(pts, mass);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.LocateLeaf(pts[i++ % n]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdLocate);

void BM_SampleBoxScan(benchmark::State& state) {
  Rng rng(7);
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  std::vector<WeightedKey> entries(s);
  for (std::size_t i = 0; i < s; ++i) {
    entries[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                  {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  const Sample sample(1.0, std::move(entries));
  const Box box{{0, 1 << 19}, {0, 1 << 19}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample.EstimateBox(box));
  }
  state.SetItemsProcessed(state.iterations() * s);
}
BENCHMARK(BM_SampleBoxScan)->Arg(100)->Arg(10000);

void BM_TwoPassBuild(benchmark::State& state) {
  Rng rng(8);
  const std::size_t n = 20000;
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(keys::kAware, cfg);
    builder->AddBatch(items);
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TwoPassBuild);

void BM_RegistryMake(benchmark::State& state) {
  // Per-build overhead of the registry factory path (lookup + validation +
  // builder allocation) — the cost every call site pays over calling the
  // underlying function directly.
  SummarizerConfig cfg;
  cfg.s = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeSummarizer(keys::kProduct, cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryMake);

}  // namespace
}  // namespace sas

BENCHMARK_MAIN();
