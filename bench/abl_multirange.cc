// Ablation: multi-range query error scaling (Appendix C, Lemma 4, and the
// Section 1 claim). For queries that are unions of L disjoint ranges, the
// error of a sample grows like sqrt(L) (the leftovers behave like a VarOpt
// sample of size <= L), while deterministic range summaries accumulate
// error linearly in L. Measured on a 1-D order structure with the order
// summarizer, an oblivious VarOpt sample, and the 1-D wavelet / q-digest.

#include <cmath>

#include "api/registry.h"
#include "core/random.h"
#include "eval/table.h"
#include "sampling/varopt_offline.h"
#include "summaries/qdigest.h"
#include "summaries/wavelet1d.h"

int main(int argc, char** argv) {
  using namespace sas;
  (void)argc;
  (void)argv;
  std::printf("=== Ablation: error vs #ranges per query (1-D, fixed "
              "per-range weight) ===\n");
  Rng rng(2024);
  const std::size_t n = 20000;
  const int bits = 20;
  const double s = 400.0;

  std::vector<WeightedKey> items(n);
  std::vector<std::pair<Coord, Weight>> flat(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(i) * ((Coord{1} << bits) / n) +
                    rng.NextBounded((Coord{1} << bits) / n);
    const Weight w = rng.NextPareto(1.2);
    items[i] = {static_cast<KeyId>(i), w, {x, 0}};
    flat[i] = {x, w};
    total += w;
  }

  const Wavelet1D wavelet(flat, static_cast<std::size_t>(s), bits);
  const QDigest qdigest(flat, s, bits);

  Table table({"ranges", "aware", "obliv", "wavelet", "qdigest",
               "aware_x_sqrtL"});
  for (int L : {1, 4, 16, 64, 256}) {
    // Queries: L disjoint ranges, each of ~n/1024 keys, so the total query
    // weight grows with L while per-range weight stays fixed.
    const int reps = 30;
    double err_aware = 0.0, err_obliv = 0.0, err_wv = 0.0, err_qd = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      // Draw L disjoint ranges by picking L starting slots out of 1024.
      std::vector<int> slots;
      while (static_cast<int>(slots.size()) < L) {
        const int c = static_cast<int>(rng.NextBounded(1024));
        bool dup = false;
        for (int sgot : slots) dup |= sgot == c;
        if (!dup) slots.push_back(c);
      }
      const Coord slot_span = (Coord{1} << bits) / 1024;
      std::vector<Interval> ranges;
      Weight exact = 0.0;
      for (int c : slots) {
        const Interval iv{static_cast<Coord>(c) * slot_span,
                          static_cast<Coord>(c + 1) * slot_span};
        ranges.push_back(iv);
        for (const auto& [x, w] : flat) {
          if (iv.Contains(x)) exact += w;
        }
      }
      auto query_sample = [&](const Sample& sample) {
        Weight est = 0.0;
        for (const auto& e : sample.entries()) {
          for (const auto& iv : ranges) {
            if (iv.Contains(e.pt.x)) {
              est += sample.AdjustedWeight(e);
              break;
            }
          }
        }
        return est;
      };
      SummarizerConfig cfg;
      cfg.s = s;
      cfg.seed = rng.Next();
      cfg.structure = StructureSpec::Order();
      const Sample aware =
          BuildSummary(keys::kOrder, cfg, items)->AsSample()->sample();
      const Sample obliv = VarOptOffline(items, s, &rng);
      err_aware += std::fabs(query_sample(aware) - exact);
      err_obliv += std::fabs(query_sample(obliv) - exact);
      double est_wv = 0.0, est_qd = 0.0;
      for (const auto& iv : ranges) {
        est_wv += wavelet.RangeSum(iv.lo, iv.hi);
        est_qd += qdigest.RangeSum(iv.lo, iv.hi);
      }
      err_wv += std::fabs(est_wv - exact);
      err_qd += std::fabs(est_qd - exact);
    }
    const double norm = reps * total;
    table.AddRow({Table::Int(L), Table::Num(err_aware / norm),
                  Table::Num(err_obliv / norm), Table::Num(err_wv / norm),
                  Table::Num(err_qd / norm),
                  Table::Num(err_aware / norm / std::sqrt(L))});
  }
  table.Print();
  std::printf("(sample error should scale ~sqrt(ranges); deterministic "
              "summaries ~linearly)\n");
  return 0;
}
