// Figure 3(c): time to answer 2500 rectangle queries vs summary size on
// the Network data.
//
// Paper finding: samples (aware == obliv once built) answer thousands of
// rectangles per second by scanning the sample; wavelet is ~3 orders of
// magnitude slower per rectangle.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 3(c): time to answer 2500 rectangle queries vs "
              "summary size (Network) ===\n");
  const Dataset2D ds = bench::BenchNetwork(args);

  // 2500 rectangles = 100 queries x 25 ranges, as in the paper's batch.
  Rng qrng(1234);
  const QueryBattery battery = UniformAreaQueries(
      ds.items, ds.domain, static_cast<int>(args.Get("queries", 100)),
      /*ranges=*/25, /*max_frac=*/0.3, &qrng);
  std::size_t rects = 0;
  for (const auto& q : battery.queries) rects += q.boxes.size();
  std::printf("battery: %zu rectangles\n", rects);

  const auto methods = DefaultMethods(/*include_sketch=*/true);
  Table table({"size", "method", "query_s", "rects_per_s"});
  for (std::size_t s : bench::SizeSweep(args)) {
    const auto built = BuildMethods(ds, s, methods, 7000 + s);
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Int(s), r.method, Table::Num(r.query_seconds),
                    Table::Num(static_cast<double>(rects) /
                               std::max(r.query_seconds, 1e-9))});
    }
  }
  table.Print();
  return 0;
}
