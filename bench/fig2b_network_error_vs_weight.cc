// Figure 2(b): Network data, absolute error vs query weight, uniform-weight
// queries with 10 ranges per query, fixed summary size (paper: 2700).
//
// Paper finding: sampling methods far better than qdigest; aware ~half the
// error of obliv on heavier queries; shallow error growth with weight
// (improving relative error).

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 2(b): Network, abs error vs query weight "
              "(uniform-weight queries, 10 ranges, s=2700) ===\n");
  const Dataset2D ds = bench::BenchNetwork(args);
  const WeightPartition part(ds.items, ds.domain);
  const std::size_t s = static_cast<std::size_t>(args.Get("s", 2700));

  const auto built = BuildMethods(ds, s, DefaultMethods(), 77);
  Table table({"query_weight", "method", "abs_error", "rel_error"});
  // Depth d cells hold ~ W/2^d; a 10-range query has weight ~ 10/2^d of
  // the data. Sweep depth to sweep query weight.
  for (int depth = 12; depth >= 4; --depth) {
    Rng qrng(3000 + depth);
    const QueryBattery battery = UniformWeightQueries(
        ds.items, part, static_cast<int>(args.Get("queries", 50)),
        /*ranges=*/10, depth, &qrng);
    double mean_weight = 0.0;
    for (const auto& q : battery.queries) mean_weight += q.exact;
    mean_weight /= battery.queries.size() * battery.data_total;
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Num(mean_weight), r.method,
                    Table::Num(r.errors.mean_abs),
                    Table::Num(r.errors.mean_rel)});
    }
  }
  table.Print();
  return 0;
}
