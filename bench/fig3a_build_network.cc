// Figure 3(a): construction throughput (items/s) vs summary size on the
// Network data, all five methods.
//
// Paper finding: obliv fastest (one pass); aware ~2-4x slower (two passes +
// kd lookups); qdigest and sketch ~2 orders slower; wavelet ~4 orders
// slower (each point touches logX*logY coefficients).

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 3(a): Network, construction throughput (items/s) "
              "vs summary size ===\n");
  const Dataset2D ds = bench::BenchNetwork(args);
  const double n = static_cast<double>(ds.items.size());

  const auto methods = DefaultMethods(/*include_sketch=*/true);
  Table table({"size", "method", "items_per_s", "build_s"});
  for (std::size_t s : bench::SizeSweep(args)) {
    const auto built = BuildMethods(ds, s, methods, 5000 + s);
    for (const auto& b : built) {
      table.AddRow({Table::Int(s), b.summary->Name(),
                    Table::Num(n / std::max(b.build_seconds, 1e-9)),
                    Table::Num(b.build_seconds)});
    }
  }
  table.Print();
  return 0;
}
