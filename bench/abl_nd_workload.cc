// Ablation: d-dimensional workloads end to end through the harness. Unlike
// abl_dimension (which measures box-count discrepancy on hand-built
// aggregation passes), this drives the public path the evaluation figures
// use: GenerateNdCloud -> BuildMethodsNd("nd" / "obliv" registry keys) ->
// UniformVolumeQueriesNd -> EvaluateOnBatteryNd, for d = 1..4.
//
// The structure-aware sample's box error should stay well below the
// oblivious baseline's at every d, with the gap narrowing as d grows
// (discrepancy ~ s^((d-1)/(2d)) vs the oblivious s^(1/2)).

#include <cstdio>

#include "api/keys.h"
#include "data/nd_gen.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  (void)argc;
  (void)argv;
  std::printf("=== Ablation: end-to-end harness error vs dimension "
              "(mean |err| / total weight) ===\n");
  Table table({"d", "s", "nd_err", "obliv_err", "nd_build_ms", "sample"});
  for (int d = 1; d <= 4; ++d) {
    NdCloudConfig gen;
    gen.num_points = 16384;
    gen.dims = d;
    gen.seed = 4200 + d;
    const DatasetNd ds = GenerateNdCloud(gen);
    Rng rng(31 + d);
    const NdQueryBattery battery =
        UniformVolumeQueriesNd(ds, /*num_queries=*/60, /*max_frac=*/0.5,
                               &rng);
    for (std::size_t s : {256u, 1024u}) {
      const auto built =
          BuildMethodsNd(ds, s, {keys::kNd, keys::kObliv}, 900 + d);
      const BatteryResult nd = EvaluateOnBatteryNd(built[0], battery, ds);
      const BatteryResult obliv = EvaluateOnBatteryNd(built[1], battery, ds);
      table.AddRow({Table::Int(d), Table::Int(static_cast<int>(s)),
                    Table::Num(nd.errors.mean_abs),
                    Table::Num(obliv.errors.mean_abs),
                    Table::Num(1e3 * nd.build_seconds),
                    Table::Int(static_cast<int>(nd.size_elements))});
    }
  }
  table.Print();
  std::printf("(nd_err should sit below obliv_err at every d; both shrink "
              "with s)\n");
  return 0;
}
