// Ablation: the two-pass algorithm's oversampling factor s'/s (Section 5;
// the paper uses 5x and notes larger factors did not significantly help).
// Measures range-query error of the two-pass product sampler as the factor
// varies, against the main-memory product sampler as the reference.

#include "api/registry.h"
#include "bench/bench_common.h"
#include "data/query_gen.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Ablation: two-pass oversampling factor s'/s ===\n");
  bench::Args small_args(argc, argv);
  Dataset2D ds = bench::BenchNetwork(args);
  const std::size_t s = static_cast<std::size_t>(args.Get("s", 1000));

  const WeightPartition part(ds.items, ds.domain);
  Rng qrng(515);
  const QueryBattery battery = UniformWeightQueries(
      ds.items, part, static_cast<int>(args.Get("queries", 40)),
      /*ranges=*/10, /*depth=*/6, &qrng);

  auto eval = [&](const char* key, double factor) {
    std::vector<Weight> est, exact;
    const int seeds = 5;
    double mean = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      SummarizerConfig cfg;
      cfg.s = static_cast<double>(s);
      cfg.seed = 4000 + seed;
      cfg.sprime_factor = factor;
      cfg.structure = StructureSpec::Product();
      const auto summary = BuildSummary(key, cfg, ds.items);
      est.clear();
      exact.clear();
      for (const auto& q : battery.queries) {
        est.push_back(summary->EstimateQuery(q));
        exact.push_back(q.exact);
      }
      mean += ComputeErrors(est, exact, battery.data_total).mean_abs;
    }
    return mean / seeds;
  };

  Table table({"scheme", "sprime_factor", "abs_error"});
  for (double factor : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const double err = eval(keys::kAware, factor);
    table.AddRow({"two_pass", Table::Num(factor), Table::Num(err)});
  }
  const double mm = eval(keys::kProduct, /*factor=*/5.0);
  table.AddRow({"main_memory", "-", Table::Num(mm)});
  table.Print();
  return 0;
}
