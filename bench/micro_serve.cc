// Micro-benchmarks (google-benchmark) for the lock-free serving tier
// (src/serve/): snapshot build cost at publish time, the accelerated
// bit-identical box/subset estimates against the linear Sample scans they
// replace, O(1) alias-table draws, and the mixed workload the tier exists
// for — concurrent reader threads acquiring and querying snapshots while
// one publisher keeps republishing. The mixed benchmark reports reader
// acquire+query latency percentiles (p50/p95/p99, nanoseconds) as
// counters. Baselines are checked into BENCH_serve.json and gated by
// bench/compare_bench.py in CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/random.h"
#include "core/sample.h"
#include "serve/query_service.h"
#include "serve/snapshot.h"

namespace sas {
namespace {

/// A finalized-sample stand-in: s entries with Pareto weights scattered
/// over a 2^20 x 2^20 domain, tau at the bottom of the weight range (every
/// entry's adjusted weight is max(w, tau), as in a real bottom-k build).
Sample ParetoSample(std::size_t s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedKey> entries(s);
  for (std::size_t i = 0; i < s; ++i) {
    entries[i] = {static_cast<KeyId>(rng.NextBounded(1u << 24)),
                  rng.NextPareto(1.2),
                  {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  return Sample(1.0, std::move(entries));
}

/// A selective box: uniform corner, sides up to 1/16 of each axis — the
/// drill-down shape a serving dashboard issues (the accelerated path is
/// output-sensitive; a box covering most of the domain degenerates to the
/// linear scan plus a sort, which is not the regime the tier serves).
Box RandomBox(Rng* rng) {
  const Coord x0 = rng->NextBounded(1 << 20);
  const Coord y0 = rng->NextBounded(1 << 20);
  const Coord wx = 1 + rng->NextBounded(1 << 16);
  const Coord wy = 1 + rng->NextBounded(1 << 16);
  return {{x0, x0 + wx}, {y0, y0 + wy}};
}

/// Snapshot construction — the per-publish cost: one deep sample copy plus
/// the sorted indexes, prefix sums, and the alias table, O(s log s).
void BM_SnapshotBuild(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const Sample sample = ParetoSample(s, 71);
  for (auto _ : state) {
    ServingSnapshot snap(sample);
    benchmark::DoNotOptimize(snap.TotalWeight());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(s));
}
BENCHMARK(BM_SnapshotBuild)->Arg(1 << 10)->Arg(1 << 14)
    ->Unit(benchmark::kMicrosecond);

/// The linear reference: Sample::EstimateBox scans all s entries per query.
void BM_LinearBox(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const Sample sample = ParetoSample(s, 72);
  Rng rng(73);
  std::vector<Box> boxes(256);
  for (auto& b : boxes) b = RandomBox(&rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample.EstimateBox(boxes[i++ % boxes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearBox)->Arg(1 << 10)->Arg(1 << 14);

/// The accelerated bit-identical path over the same boxes: x-localized
/// binary search plus the entry-order re-sort (O(log s + k log k)); returns
/// the same bits as BM_LinearBox query for query.
void BM_ServeQueryBox(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const Sample sample = ParetoSample(s, 72);
  const ServingSnapshot snap(sample);
  Rng rng(73);
  std::vector<Box> boxes(256);
  for (auto& b : boxes) b = RandomBox(&rng);
  QueryScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        snap.EstimateBox(boxes[i++ % boxes.size()], &scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeQueryBox)->Arg(1 << 10)->Arg(1 << 14);

/// The O(log s) prefix-difference subset estimate (re-associated ulp-level
/// variant) — the flat-cost path for id-range drilldowns.
void BM_ServeIdRangeFast(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const Sample sample = ParetoSample(s, 74);
  const ServingSnapshot snap(sample);
  Rng rng(75);
  std::vector<std::pair<KeyId, KeyId>> ranges(256);
  for (auto& r : ranges) {
    const KeyId a = static_cast<KeyId>(rng.NextBounded(1u << 24));
    const KeyId b = static_cast<KeyId>(rng.NextBounded(1u << 24));
    r = {std::min(a, b), std::max(a, b)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = ranges[i++ % ranges.size()];
    benchmark::DoNotOptimize(snap.EstimateIdRangeFast(r.first, r.second));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeIdRangeFast)->Arg(1 << 10)->Arg(1 << 14);

/// One sample-proportional entry draw — the Vose alias table's O(1)
/// promise (one bounded draw, one uniform, one comparison).
void BM_AliasDraw(benchmark::State& state) {
  const Sample sample = ParetoSample(1 << 14, 76);
  const ServingSnapshot snap(sample);
  Rng rng(77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.DrawIndex(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasDraw);

/// The mixed workload: four reader threads acquire/query continuously
/// (zero locks on their path) while the main thread republishes a fresh
/// snapshot per iteration. Reader latency per acquire+box-estimate is
/// collected and reported as p50/p95/p99 counters in nanoseconds; the
/// timed iteration cost is the publisher's (build + swap + reclaim under
/// concurrent pins).
void BM_ServeMixed(benchmark::State& state) {
  constexpr int kReaders = 4;
  constexpr std::size_t kSampleSize = 1 << 12;
  std::vector<Sample> samples;
  for (std::uint64_t v = 0; v < 8; ++v) {
    samples.push_back(ParetoSample(kSampleSize, 80 + v));
  }

  QueryService svc;
  svc.Publish(samples[0]);

  std::atomic<bool> stop{false};
  std::vector<std::vector<std::uint64_t>> latencies(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryService::Reader reader(svc);
      Rng rng(900 + static_cast<std::uint64_t>(r));
      auto& lat = latencies[static_cast<std::size_t>(r)];
      lat.reserve(1 << 16);
      while (!stop.load(std::memory_order_acquire)) {
        const Box box = RandomBox(&rng);
        const auto t0 = std::chrono::steady_clock::now();
        {
          SnapshotHandle snap = reader.Acquire();
          benchmark::DoNotOptimize(
              snap->EstimateBox(box, &reader.scratch()));
        }
        const auto t1 = std::chrono::steady_clock::now();
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }

  std::size_t next = 1;
  for (auto _ : state) {
    svc.Publish(samples[next++ % samples.size()]);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) -> double {
    if (all.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(all.size() - 1));
    return static_cast<double>(all[idx]);
  };
  state.counters["read_p50_ns"] = pct(0.50);
  state.counters["read_p95_ns"] = pct(0.95);
  state.counters["read_p99_ns"] = pct(0.99);
  state.counters["reads"] = static_cast<double>(all.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeMixed)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace sas

BENCHMARK_MAIN();
