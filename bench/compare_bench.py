#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [--threshold PCT]
                     [--filter SUBSTR]

For every benchmark present in both files the median real time is compared
(the `*_median` aggregate when the run used --benchmark_repetitions, the
single run's real_time otherwise). The tool exits non-zero when any shared
benchmark's candidate median exceeds the baseline median by more than
--threshold percent (default 15). Benchmarks present in only one file are
reported but never fail the gate, so adding or retiring benchmarks does not
break CI.

This is the regression gate behind the checked-in BENCH_core.json /
BENCH_shard.json baselines; see the README for how to re-baseline.
"""

import argparse
import json
import sys


# Stable machine-class descriptors only: host_name is deliberately excluded
# (CI runners get a fresh hostname per job, which would keep the gate
# permanently in its informational mode).
CONTEXT_KEYS = ("num_cpus", "mhz_per_cpu")


def load_medians(path):
    """Returns ({benchmark name: median real time}, units, context)."""
    with open(path) as f:
        data = json.load(f)
    context = {k: data.get("context", {}).get(k) for k in CONTEXT_KEYS}
    medians = {}
    units = {}
    singles = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        run_type = bench.get("run_type", "iteration")
        if run_type == "aggregate":
            if bench.get("aggregate_name") == "median":
                base = name[: -len("_median")]
                medians[base] = bench["real_time"]
                units[base] = bench.get("time_unit", "ns")
        else:
            # Repeated runs emit one iteration entry per repetition under the
            # same name; collect them and take the median ourselves.
            singles.setdefault(name, []).append(bench["real_time"])
            units.setdefault(name, bench.get("time_unit", "ns"))
    for name, times in singles.items():
        if name not in medians:
            times.sort()
            mid = len(times) // 2
            if len(times) % 2:
                medians[name] = times[mid]
            else:
                medians[name] = 0.5 * (times[mid - 1] + times[mid])
    return medians, units, context


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="max allowed median regression in percent (default 15)",
    )
    parser.add_argument(
        "--filter",
        default="",
        help="only compare benchmarks whose name contains this substring",
    )
    parser.add_argument(
        "--skip-on-context-mismatch",
        action="store_true",
        help="report but do not fail when the two files were recorded on "
        "different hardware (host/cpu context); used by CI so a checked-in "
        "baseline from another machine class degrades to informational "
        "until it is re-recorded there",
    )
    args = parser.parse_args()

    base, units, base_ctx = load_medians(args.baseline)
    cand, cand_units, cand_ctx = load_medians(args.candidate)
    context_mismatch = base_ctx != cand_ctx
    if context_mismatch:
        # Absolute medians are only comparable on matching hardware; a
        # mismatch usually means the checked-in baseline needs re-recording
        # on this machine class (see README "Re-baselining").
        print(
            "warning: baseline and candidate were recorded on different "
            f"hardware ({base_ctx} vs {cand_ctx}); ratios may reflect the "
            "machine, not the code",
            file=sys.stderr,
        )
    if args.filter:
        base = {k: v for k, v in base.items() if args.filter in k}
        cand = {k: v for k, v in cand.items() if args.filter in k}

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if not shared:
        print("error: no shared benchmarks between the two files",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'ratio':>7}")
    for name in shared:
        unit = units.get(name, "ns")
        cunit = cand_units.get(name, "ns")
        if unit != cunit:
            print(f"note: {name} changed time unit ({unit} -> {cunit}); "
                  f"skipped — re-record the baseline")
            continue
        b, c = base[name], cand[name]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold / 100.0:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:<{width}}  {b:>10.1f}{unit}  {c:>10.1f}{cunit}  "
              f"{ratio:>6.2f}x{flag}")

    for name in only_base:
        print(f"note: {name} only in baseline (skipped)")
    for name in only_cand:
        print(f"note: {name} only in candidate (skipped)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.0f}% over baseline:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        if context_mismatch and args.skip_on_context_mismatch:
            print(
                "note: hardware context mismatch and "
                "--skip-on-context-mismatch given; reporting only. "
                "Re-record the baseline on this machine class to arm the "
                "gate.",
                file=sys.stderr,
            )
            return 0
        return 1
    print(f"\nOK: {len(shared)} benchmark(s) within {args.threshold:.0f}% "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
