// Micro-benchmarks (google-benchmark) for the merge/shard layer: VarOpt
// sample merge cost and single-thread vs. N-shard build throughput of the
// "sharded:<N>:<inner>" backend. Shard scaling is bounded by the host's
// core count — record the machine when comparing runs (BENCH_shard.json).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "api/registry.h"
#include "core/merge.h"
#include "core/random.h"
#include "sampling/stream_varopt.h"
#include "sampling/varopt_offline.h"

namespace sas {
namespace {

std::vector<WeightedKey> ParetoItems(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  return items;
}

void BM_MergeSamples(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const auto items = ParetoItems(8 * s, 31);
  Rng rng(32);
  const std::vector<WeightedKey> half_a(items.begin(),
                                        items.begin() + items.size() / 2);
  const std::vector<WeightedKey> half_b(items.begin() + items.size() / 2,
                                        items.end());
  const Sample a = VarOptOffline(half_a, static_cast<double>(s), &rng);
  const Sample b = VarOptOffline(half_b, static_cast<double>(s), &rng);
  for (auto _ : state) {
    Rng merge_rng(state.iterations());
    benchmark::DoNotOptimize(MergeSamples(a, b, s, &merge_rng));
  }
  // One "item" = one merged input entry.
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_MergeSamples)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AbsorbIntoCombiner(benchmark::State& state) {
  // Streaming alternative to MergeSamples: Absorb feeds a shard sample's
  // entries into a StreamVarOpt combiner at their adjusted weights.
  const std::size_t s = 1000;
  const auto items = ParetoItems(8 * s, 33);
  Rng rng(34);
  const Sample part = VarOptOffline(items, static_cast<double>(s), &rng);
  for (auto _ : state) {
    StreamVarOpt combiner(s, Rng(state.iterations()));
    combiner.Absorb(part);
    benchmark::DoNotOptimize(combiner.TakeSample());
  }
  state.SetItemsProcessed(state.iterations() * part.size());
}
BENCHMARK(BM_AbsorbIntoCombiner);

constexpr std::size_t kBuildN = 1 << 17;

/// Build throughput of "sharded:<N>:obliv" (N = 1 is the single-shard
/// baseline: same wrapper, one worker). Compare against BM_UnshardedBuild
/// for the wrapper's queueing overhead.
void BM_ShardedBuild(benchmark::State& state) {
  static const std::vector<WeightedKey> items = ParetoItems(kBuildN, 35);
  const std::string key =
      "sharded:" + std::to_string(state.range(0)) + ":obliv";
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(key, cfg);
    builder->AddBatch(items);
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_ShardedBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_UnshardedBuild(benchmark::State& state) {
  static const std::vector<WeightedKey> items = ParetoItems(kBuildN, 35);
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(keys::kObliv, cfg);
    builder->AddBatch(items);
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_UnshardedBuild)->Unit(benchmark::kMillisecond);

void BM_ShardedBuildProduct(benchmark::State& state) {
  // Structure-aware inner method: the buffering product sampler, whose
  // kd build dominates and parallelizes across shards at Finalize.
  static const std::vector<WeightedKey> items =
      ParetoItems(kBuildN / 4, 36);
  const std::string key =
      "sharded:" + std::to_string(state.range(0)) + ":product";
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(key, cfg);
    builder->AddBatch(items);
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * items.size());
}
BENCHMARK(BM_ShardedBuildProduct)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sas

BENCHMARK_MAIN();
