// Ablation: range discrepancy of the one-dimensional schemes (Section 3,
// Theorem 1, Appendix D). Measures, over random heavy-tailed inputs:
//   * max prefix and interval discrepancy of the order summarizer
//     (guarantees: <1 and <2),
//   * max node discrepancy of the hierarchy summarizer (guarantee: <1),
//   * the same quantities for oblivious VarOpt and systematic sampling.
// This isolates the value of the pair-selection freedom: same IPPS
// probabilities, same sample size, different aggregation order.

#include <cmath>

#include "api/registry.h"
#include "core/discrepancy.h"
#include "structure/hierarchy.h"
#include "core/ipps.h"
#include "eval/table.h"
#include "sampling/systematic.h"
#include "sampling/varopt_offline.h"

int main(int argc, char** argv) {
  using namespace sas;
  (void)argc;
  (void)argv;
  std::printf("=== Ablation: 1-D discrepancy by scheme (n=500, s=50, "
              "200 trials) ===\n");
  const std::size_t n = 500;
  const double s = 50.0;
  const int trials = 200;
  Rng rng(31337);

  double ord_prefix = 0, ord_interval = 0;
  double obl_prefix = 0, obl_interval = 0;
  double sys_interval = 0;
  double hier_node = 0, obl_node = 0;

  Rng tree_rng(99);
  const Hierarchy h = Hierarchy::Random(n, 4, &tree_rng);

  for (int t = 0; t < trials; ++t) {
    std::vector<WeightedKey> items(n);
    std::vector<Weight> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = rng.NextPareto(1.2);
      items[i] = {static_cast<KeyId>(i), w[i], {static_cast<Coord>(i), 0}};
    }
    const double tau = SolveTau(w, s);
    std::vector<double> probs;
    IppsProbabilities(w, tau, &probs);

    auto flags_of = [&](const Sample& sample) {
      std::vector<KeyId> ids;
      for (const auto& e : sample.entries()) ids.push_back(e.id);
      return SampleFlags(n, ids);
    };
    auto node_disc = [&](const std::vector<char>& flags) {
      double worst = 0.0;
      for (int v = 0; v < h.num_nodes(); ++v) {
        double e = 0.0, a = 0.0;
        for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
          e += probs[h.key_at_rank(r)];
          a += flags[h.key_at_rank(r)];
        }
        worst = std::max(worst, std::fabs(a - e));
      }
      return worst;
    };

    auto registry_sample = [&](const char* key, const StructureSpec& spec) {
      SummarizerConfig cfg;
      cfg.s = s;
      cfg.seed = rng.Next();
      cfg.structure = spec;
      return BuildSummary(key, cfg, items)->AsSample()->sample();
    };

    const auto ord =
        flags_of(registry_sample(keys::kOrder, StructureSpec::Order()));
    ord_prefix = std::max(ord_prefix, MaxPrefixDiscrepancy(probs, ord));
    ord_interval = std::max(ord_interval, MaxIntervalDiscrepancy(probs, ord));

    const auto obl = flags_of(VarOptOffline(items, s, &rng));
    obl_prefix = std::max(obl_prefix, MaxPrefixDiscrepancy(probs, obl));
    obl_interval = std::max(obl_interval, MaxIntervalDiscrepancy(probs, obl));
    obl_node = std::max(obl_node, node_disc(obl));

    const auto sys = flags_of(SystematicSample(items, s, &rng));
    sys_interval = std::max(sys_interval, MaxIntervalDiscrepancy(probs, sys));

    const auto hier = flags_of(
        registry_sample(keys::kHierarchy, StructureSpec::OverHierarchy(&h)));
    hier_node = std::max(hier_node, node_disc(hier));
  }

  Table table({"scheme", "range_family", "max_discrepancy", "guarantee"});
  table.AddRow({"order_aware", "prefixes", Table::Num(ord_prefix), "<1"});
  table.AddRow({"order_aware", "intervals", Table::Num(ord_interval), "<2"});
  table.AddRow({"systematic", "intervals", Table::Num(sys_interval), "<1"});
  table.AddRow({"obliv_varopt", "prefixes", Table::Num(obl_prefix),
                "O(sqrt(s log s))"});
  table.AddRow({"obliv_varopt", "intervals", Table::Num(obl_interval),
                "O(sqrt(s log s))"});
  table.AddRow({"hierarchy_aware", "tree nodes", Table::Num(hier_node),
                "<1"});
  table.AddRow({"obliv_varopt", "tree nodes", Table::Num(obl_node),
                "O(sqrt(s log s))"});
  table.Print();
  return 0;
}
