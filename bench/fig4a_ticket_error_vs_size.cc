// Figure 4(a): Tech Ticket data, absolute error vs summary size,
// uniform-weight queries.
//
// Paper finding: aware and obliv coincide at small sizes (the heavy head
// forces the same certain inclusions) and diverge at larger sizes, where
// aware error is less than half of obliv.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 4(a): Tech Ticket, abs error vs summary size "
              "(uniform-weight queries, 10 ranges) ===\n");
  const Dataset2D ds = bench::BenchTechTicket(args);
  const WeightPartition part(ds.items, ds.domain);

  Rng qrng(8001);
  const QueryBattery battery = UniformWeightQueries(
      ds.items, part, static_cast<int>(args.Get("queries", 50)),
      /*ranges=*/10, /*depth=*/7, &qrng);

  Table table({"size", "method", "abs_error", "max_error"});
  for (std::size_t s : bench::SizeSweep(args)) {
    const auto built = BuildMethods(ds, s, DefaultMethods(), 8000 + s);
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Int(s), r.method, Table::Num(r.errors.mean_abs),
                    Table::Num(r.errors.max_abs)});
    }
  }
  table.Print();
  return 0;
}
