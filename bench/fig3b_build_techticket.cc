// Figure 3(b): construction throughput (items/s) vs summary size on the
// Tech Ticket data, all five methods. Same trends as Figure 3(a); the
// paper highlights that wavelets become entirely impractical here.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 3(b): Tech Ticket, construction throughput "
              "(items/s) vs summary size ===\n");
  const Dataset2D ds = bench::BenchTechTicket(args);
  const double n = static_cast<double>(ds.items.size());

  const auto methods = DefaultMethods(/*include_sketch=*/true);
  Table table({"size", "method", "items_per_s", "build_s"});
  for (std::size_t s : bench::SizeSweep(args)) {
    const auto built = BuildMethods(ds, s, methods, 6000 + s);
    for (const auto& b : built) {
      table.AddRow({Table::Int(s), b.summary->Name(),
                    Table::Num(n / std::max(b.build_seconds, 1e-9)),
                    Table::Num(b.build_seconds)});
    }
  }
  table.Print();
  return 0;
}
