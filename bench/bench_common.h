// Shared setup for the per-figure bench binaries: scaled-down default
// workloads (so the full suite runs in minutes on a laptop) and a tiny
// key=value argument parser for overriding scale.
//
// Every binary prints the series of one figure of the paper; absolute
// numbers differ from the paper (synthetic data, C++ vs Python, 2026
// hardware) but the relative ordering and trends are the reproduction
// target (see EXPERIMENTS.md).

#ifndef SAS_BENCH_BENCH_COMMON_H_
#define SAS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/network_gen.h"
#include "data/techticket_gen.h"

namespace sas::bench {

/// key=value command-line arguments, e.g. `./fig2a pairs=100000 bits=20`.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* eq = std::strchr(argv[i], '=');
      if (eq != nullptr) {
        kv_.emplace_back(std::string(argv[i], eq - argv[i]),
                         std::string(eq + 1));
      }
    }
  }

  long Get(const std::string& key, long fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atol(v.c_str());
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Bench-scale Network dataset: same shape as the paper's (hierarchically
/// clustered 2-D IP space, Zipf endpoints, Pareto flow sizes), sized to
/// keep the wavelet/sketch baselines tractable per run.
inline Dataset2D BenchNetwork(const Args& args) {
  NetworkConfig cfg;
  cfg.num_sources = static_cast<std::size_t>(args.Get("sources", 8000));
  cfg.num_dests = static_cast<std::size_t>(args.Get("dests", 6000));
  cfg.num_pairs = static_cast<std::size_t>(args.Get("pairs", 40000));
  cfg.bits = static_cast<int>(args.Get("bits", 16));
  cfg.seed = static_cast<std::uint64_t>(args.Get("seed", 42));
  return GenerateNetwork(cfg);
}

/// Bench-scale Tech Ticket dataset.
inline Dataset2D BenchTechTicket(const Args& args) {
  TechTicketConfig cfg;
  cfg.num_codes = static_cast<std::size_t>(args.Get("codes", 1000));
  cfg.num_locations = static_cast<std::size_t>(args.Get("locations", 8000));
  cfg.num_pairs = static_cast<std::size_t>(args.Get("pairs", 50000));
  cfg.bits = static_cast<int>(args.Get("bits", 16));
  cfg.seed = static_cast<std::uint64_t>(args.Get("seed", 7));
  return GenerateTechTicket(cfg);
}

/// Standard summary-size sweep (paper: 100 .. 100K; scaled to the bench
/// dataset sizes here).
inline std::vector<std::size_t> SizeSweep(const Args& args) {
  std::vector<std::size_t> sizes{100, 300, 1000, 3000, 10000};
  const long max_size = args.Get("max_size", 10000);
  while (!sizes.empty() && static_cast<long>(sizes.back()) > max_size) {
    sizes.pop_back();
  }
  return sizes;
}

}  // namespace sas::bench

#endif  // SAS_BENCH_BENCH_COMMON_H_
