// Micro-benchmarks (google-benchmark) for the time-windowed backend
// (window/windowed.h): timestamped ingest throughput, the cost of an epoch
// advance (bucket seal + rebuild + retirement), and window queries with and
// without the cached merged sample. Baselines are checked into
// BENCH_window.json and gated by bench/compare_bench.py in CI.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/random.h"
#include "window/windowed.h"

namespace sas {
namespace {

constexpr double kWindow = 64.0;
constexpr int kBuckets = 8;
const char kKey[] = "windowed:64:8:obliv";

std::vector<WeightedKey> ParetoItems(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedKey> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {static_cast<KeyId>(i), rng.NextPareto(1.2),
                {rng.NextBounded(1 << 20), rng.NextBounded(1 << 20)}};
  }
  return items;
}

WindowedSummarizer* AsWindowed(Summarizer& builder) {
  WindowedSummarizer* win = builder.AsWindowed();
  if (win == nullptr) std::abort();
  return win;
}

/// Timestamped ingest across many epochs: the steady-state cost of
/// AddTimed (clock checks, buffer append, periodic bucket seal/rebuild).
void BM_WindowIngest(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  static const std::vector<WeightedKey> items = ParetoItems(1 << 17, 61);
  // Spread the n items over two full windows so every run seals and
  // retires buckets (16 epochs).
  const double horizon = 2.0 * kWindow;
  for (auto _ : state) {
    SummarizerConfig cfg;
    cfg.s = 1000.0;
    cfg.seed = state.iterations();
    auto builder = MakeSummarizer(kKey, cfg);
    WindowedSummarizer* win = AsWindowed(*builder);
    for (std::size_t i = 0; i < n; ++i) {
      win->AddTimed(horizon * static_cast<double>(i) / n, items[i]);
    }
    benchmark::DoNotOptimize(builder->Finalize());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WindowIngest)->Arg(1 << 14)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// One epoch advance: seal the current bucket (inner rebuild over the
/// bucket's items), retire the expired slot, recycle the builder.
void BM_WindowAdvance(benchmark::State& state) {
  const std::size_t per_bucket = static_cast<std::size_t>(state.range(0));
  static const std::vector<WeightedKey> items = ParetoItems(1 << 14, 62);
  SummarizerConfig cfg;
  cfg.s = 1000.0;
  cfg.seed = 63;
  auto builder = MakeSummarizer(kKey, cfg);
  WindowedSummarizer* win = AsWindowed(*builder);
  const double span = win->bucket_span();
  double now = 0.0;
  std::size_t next = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < per_bucket; ++i) {
      win->Add(items[next++ % items.size()]);
    }
    now += span;
    win->Advance(now);  // seals the bucket just filled
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(per_bucket));
}
BENCHMARK(BM_WindowAdvance)->Arg(1 << 10)->Arg(1 << 13)
    ->Unit(benchmark::kMicrosecond);

/// Repeated-query path, cache warm: QueryAt between advances returns the
/// cached merged sample without re-merging.
void BM_WindowQueryCached(benchmark::State& state) {
  static const std::vector<WeightedKey> items = ParetoItems(1 << 15, 64);
  SummarizerConfig cfg;
  cfg.s = 1000.0;
  cfg.seed = 65;
  auto builder = MakeSummarizer(kKey, cfg);
  WindowedSummarizer* win = AsWindowed(*builder);
  const double horizon = kWindow;
  for (std::size_t i = 0; i < items.size(); ++i) {
    win->AddTimed(horizon * static_cast<double>(i) / items.size(), items[i]);
  }
  (void)win->QueryAt(horizon);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(win->QueryAt(horizon).EstimateTotal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowQueryCached);

/// Repeated-query path, cache cold: every iteration crosses one epoch
/// boundary (fixed per-bucket fill), so each QueryAt seals the bucket and
/// re-merges the B-1 live samples (~s entries each) through the reused
/// MergeScratch — the steady-state cost a per-epoch dashboard refresh pays.
void BM_WindowQueryUncached(benchmark::State& state) {
  static const std::vector<WeightedKey> items = ParetoItems(1 << 15, 66);
  constexpr std::size_t kPerBucket = 1 << 10;
  SummarizerConfig cfg;
  cfg.s = 1000.0;
  cfg.seed = 67;
  auto builder = MakeSummarizer(kKey, cfg);
  WindowedSummarizer* win = AsWindowed(*builder);
  const double span = win->bucket_span();
  double now = 0.0;
  std::size_t next = 0;
  // Pre-fill a full ring so the loop runs in steady state.
  for (int e = 0; e < kBuckets; ++e) {
    for (std::size_t i = 0; i < kPerBucket; ++i) {
      win->Add(items[next++ % items.size()]);
    }
    now += span;
    win->Advance(now);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPerBucket; ++i) {
      win->Add(items[next++ % items.size()]);
    }
    now += span;
    benchmark::DoNotOptimize(win->QueryAt(now).EstimateTotal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowQueryUncached)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sas

BENCHMARK_MAIN();
