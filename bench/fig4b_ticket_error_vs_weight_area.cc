// Figure 4(b): Tech Ticket data, absolute error vs query weight, with
// uniform-AREA queries of 25 ranges, fixed summary size.
//
// Paper finding: wavelets become competitive at high query weights on this
// query type, but sampling (aware) stays best overall.

#include <algorithm>

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 4(b): Tech Ticket, abs error vs query weight "
              "(uniform-area queries, 25 ranges, fixed size) ===\n");
  const Dataset2D ds = bench::BenchTechTicket(args);
  const std::size_t s = static_cast<std::size_t>(args.Get("s", 2700));
  const auto built = BuildMethods(ds, s, DefaultMethods(), 88);

  Table table({"area_frac", "mean_weight", "method", "abs_error"});
  // Sweep rectangle scale to sweep query weight.
  for (double frac : {0.002, 0.01, 0.05, 0.2, 0.5}) {
    Rng qrng(static_cast<std::uint64_t>(frac * 1e6));
    const QueryBattery battery = UniformAreaQueries(
        ds.items, ds.domain, static_cast<int>(args.Get("queries", 50)),
        /*ranges=*/25, frac, &qrng);
    double mean_weight = 0.0;
    for (const auto& q : battery.queries) mean_weight += q.exact;
    mean_weight /= battery.queries.size() * battery.data_total;
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Num(frac), Table::Num(mean_weight), r.method,
                    Table::Num(r.errors.mean_abs)});
    }
  }
  table.Print();
  return 0;
}
