// Figure 4(c): Tech Ticket data, absolute error vs query weight, with
// uniform-WEIGHT queries of 10 ranges, fixed summary size.
//
// Paper finding: the wavelet advantage of Figure 4(b) disappears when each
// range's weight is controlled; structure-aware sampling gives the best
// results overall.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 4(c): Tech Ticket, abs error vs query weight "
              "(uniform-weight queries, 10 ranges, fixed size) ===\n");
  const Dataset2D ds = bench::BenchTechTicket(args);
  const WeightPartition part(ds.items, ds.domain);
  const std::size_t s = static_cast<std::size_t>(args.Get("s", 2700));
  const auto built = BuildMethods(ds, s, DefaultMethods(), 89);

  Table table({"query_weight", "method", "abs_error", "rel_error"});
  for (int depth = 12; depth >= 4; --depth) {
    Rng qrng(9000 + depth);
    const QueryBattery battery = UniformWeightQueries(
        ds.items, part, static_cast<int>(args.Get("queries", 50)),
        /*ranges=*/10, depth, &qrng);
    double mean_weight = 0.0;
    for (const auto& q : battery.queries) mean_weight += q.exact;
    mean_weight /= battery.queries.size() * battery.data_total;
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Num(mean_weight), r.method,
                    Table::Num(r.errors.mean_abs),
                    Table::Num(r.errors.mean_rel)});
    }
  }
  table.Print();
  return 0;
}
