// Figure 2(a): Network data, absolute error vs summary size, uniform-area
// queries with 25 ranges per query.
//
// Paper finding: aware < obliv (2-3x) << qdigest; wavelet competitive;
// sketch off the scale.

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sas;
  const bench::Args args(argc, argv);
  std::printf("=== Figure 2(a): Network, abs error vs summary size "
              "(uniform-area queries, 25 ranges) ===\n");
  const Dataset2D ds = bench::BenchNetwork(args);
  std::printf("dataset: %zu pairs, total weight %.1f\n", ds.items.size(),
              ds.total_weight());

  Rng qrng(1001);
  const QueryBattery battery = UniformAreaQueries(
      ds.items, ds.domain, static_cast<int>(args.Get("queries", 50)),
      /*ranges=*/25, /*max_frac=*/0.3, &qrng);

  const auto methods = DefaultMethods(args.Get("sketch", 1) != 0);
  Table table({"size", "method", "abs_error", "max_error", "build_s"});
  for (std::size_t s : bench::SizeSweep(args)) {
    const auto built = BuildMethods(ds, s, methods, 2000 + s);
    for (const auto& b : built) {
      const auto r = EvaluateOnBattery(b, battery);
      table.AddRow({Table::Int(s), r.method, Table::Num(r.errors.mean_abs),
                    Table::Num(r.errors.max_abs),
                    Table::Num(r.build_seconds)});
    }
  }
  table.Print();
  return 0;
}
