// Heavy hitters and order statistics from one structure-aware sample —
// the higher-level applications the paper's introduction motivates
// ("heavy hitters detection, computing order statistics over subsets").
//
//   $ ./heavy_hitters [pairs=40000] [s=1500]

#include <cstdio>
#include <algorithm>
#include <cmath>
#include <cstring>

#include "api/registry.h"
#include "core/sample_queries.h"
#include "data/network_gen.h"
#include "structure/hierarchy.h"
#include "summaries/exact_summary.h"

int main(int argc, char** argv) {
  using namespace sas;
  std::size_t pairs = 40000, s = 1500;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) pairs = std::atol(argv[i] + 6);
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atol(argv[i] + 2);
  }

  NetworkConfig cfg;
  cfg.num_pairs = pairs;
  cfg.num_sources = pairs / 5;
  cfg.num_dests = pairs / 6;
  cfg.bits = 24;
  const Dataset2D ds = GenerateNetwork(cfg);
  const Weight total = ds.total_weight();
  std::printf("flow table: %zu pairs, total %.1f\n", ds.items.size(), total);

  SummarizerConfig scfg;
  scfg.s = static_cast<double>(s);
  scfg.seed = 5;
  scfg.structure = StructureSpec::Product();
  const auto summary = BuildSummary(keys::kAware, scfg, ds.items);
  const Sample& sample = summary->AsSample()->sample();
  std::printf("sample: %zu keys\n\n", sample.size());

  // Heavy flows: every key above the threshold is a certain inclusion, so
  // nothing heavy is missed.
  const double phi = 0.002;
  const auto hitters = EstimateHeavyHitters(sample, phi);
  std::printf("flows with >= %.1f%% of total traffic (top 5 shown):\n",
              100 * phi);
  int shown = 0;
  for (const auto& h : hitters) {
    if (shown++ == 5) break;
    // Exact weight for comparison.
    Weight exact = 0.0;
    for (const auto& it : ds.items) {
      if (it.pt == h.key.pt) exact = it.weight;
    }
    std::printf("  src=%8llu dst=%8llu est %8.1f (%.3f%%)  exact %8.1f\n",
                static_cast<unsigned long long>(h.key.pt.x),
                static_cast<unsigned long long>(h.key.pt.y),
                h.estimated_weight, 100 * h.estimated_fraction, exact);
  }
  std::printf("  (%zu heavy flows found)\n\n", hitters.size());

  // Traffic quantiles over the source address space (where does the middle
  // of the traffic live?), with exact values for comparison.
  std::printf("source-address traffic quantiles (estimate vs exact):\n");
  for (double q : {0.25, 0.5, 0.75}) {
    const Coord est = EstimateQuantileX(sample, q);
    // Exact quantile by scanning the data.
    std::vector<std::pair<Coord, Weight>> by_x;
    for (const auto& it : ds.items) by_x.push_back({it.pt.x, it.weight});
    std::sort(by_x.begin(), by_x.end());
    Weight run = 0.0;
    Coord exact = 0;
    for (const auto& [x, w] : by_x) {
      run += w;
      if (run >= q * total) {
        exact = x;
        break;
      }
    }
    std::printf("  q=%.2f: est %10llu  exact %10llu  (off by %.3f%% of the "
                "domain)\n",
                q, static_cast<unsigned long long>(est),
                static_cast<unsigned long long>(exact),
                100.0 * std::fabs(static_cast<double>(est) -
                                  static_cast<double>(exact)) /
                    static_cast<double>(Coord{1} << cfg.bits));
  }

  // Hierarchical heavy hitters: which source /6-style prefixes carry >= 5%
  // of traffic (ranges from the source hierarchy's depth-2 nodes).
  std::vector<Interval> prefix_ranges;
  const Hierarchy& hx = *ds.hx;
  for (int v = 0; v < hx.num_nodes(); ++v) {
    if (hx.depth(v) == 2) prefix_ranges.push_back(hx.coord_range(v));
  }
  const auto range_hitters =
      EstimateRangeHeavyHittersX(sample, prefix_ranges, 0.05);
  std::printf("\nsource prefix blocks with >= 5%% of traffic:\n");
  for (const auto& rh : range_hitters) {
    const Weight exact =
        ExactBoxSum(ds.items, {rh.range, {0, ds.domain.y.size()}});
    std::printf("  [%10llu, %10llu): est %9.1f (%.1f%%)  exact %9.1f\n",
                static_cast<unsigned long long>(rh.range.lo),
                static_cast<unsigned long long>(rh.range.hi),
                rh.estimated_weight, 100 * rh.estimated_fraction, exact);
  }
  return 0;
}
