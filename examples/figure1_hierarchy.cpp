// Reproduces the worked example of Figure 1: structure-aware VarOpt
// sampling over a hierarchy of 10 keys with sample size 4, built through
// the registry API. Exits nonzero if any node violates the floor/ceiling
// guarantee, so CI can smoke-test it.
//
// The paper's IPPS probabilities are (0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4,
// 0.2, 0.3, 0.2); every internal node must end up with the floor or the
// ceiling of its expected number of samples.
//
//   $ ./figure1_hierarchy

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/registry.h"
#include "structure/hierarchy.h"

int main() {
  using namespace sas;

  // Weights chosen so the IPPS probabilities for s = 4 match the figure
  // (tau = 10, p_i = w_i / 10).
  const std::vector<Weight> weights{3, 6, 4, 7, 1, 8, 4, 2, 3, 2};
  std::vector<WeightedKey> items;
  for (KeyId k = 0; k < weights.size(); ++k) {
    items.push_back({k, weights[k], {k, 0}});
  }
  // Hierarchy of Figure 1: leaf groups {1,2}, {3,4}, {5}, {6,7}, {8,9,10}.
  const std::vector<int> parent{-1, 0, 0, 0, 0, 0, 1, 1, 2, 2, 4, 4, 5, 5, 5};
  const Hierarchy h = Hierarchy::FromParents(parent);

  SummarizerConfig cfg;
  cfg.s = 4.0;
  cfg.seed = 1;
  cfg.structure = StructureSpec::OverHierarchy(&h);
  auto builder = MakeSummarizer(keys::kHierarchy, cfg);
  builder->AddBatch(items);
  const auto summary = builder->Finalize();
  const SampleSummary& result = *summary->AsSample();

  std::printf("leaf :");
  for (KeyId k = 0; k < 10; ++k) std::printf(" %4u", k + 1);
  std::printf("\nIPPS :");
  for (double p : result.probs()) std::printf(" %4.1f", p);
  std::printf("\npick :");
  std::vector<char> chosen(10, 0);
  for (const auto& e : result.sample().entries()) chosen[e.id] = 1;
  for (KeyId k = 0; k < 10; ++k) std::printf(" %4c", chosen[k] ? '*' : '.');
  std::printf("\n\nsample size: %zu (expected exactly 4)\n",
              result.sample().size());

  bool ok = result.sample().size() == 4;
  std::printf("\nper-node sample counts vs expectations:\n");
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (h.is_leaf(v)) continue;
    double expect = 0.0;
    int actual = 0;
    for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
      expect += result.probs()[h.key_at_rank(r)];
      actual += chosen[h.key_at_rank(r)];
    }
    const bool floor_or_ceil =
        actual == static_cast<int>(std::floor(expect)) ||
        actual == static_cast<int>(std::ceil(expect));
    ok = ok && floor_or_ceil;
    std::printf("  node %2d covers leaves %zu..%zu: expected %.1f, got %d "
                "(floor/ceil: %s)\n",
                v, h.leaf_begin(v) + 1, h.leaf_end(v), expect, actual,
                floor_or_ceil ? "yes" : "NO — bug!");
  }
  return ok ? 0 : 1;
}
