// Reproduces the worked example of Figure 1: structure-aware VarOpt
// sampling over a hierarchy of 10 keys with sample size 4.
//
// The paper's IPPS probabilities are (0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4,
// 0.2, 0.3, 0.2); every internal node must end up with the floor or the
// ceiling of its expected number of samples.
//
//   $ ./figure1_hierarchy

#include <cmath>
#include <cstdio>
#include <vector>

#include "aware/hierarchy_summarizer.h"
#include "core/ipps.h"

int main() {
  using namespace sas;

  // Weights chosen so the IPPS probabilities for s = 4 match the figure
  // (tau = 10, p_i = w_i / 10).
  const std::vector<Weight> weights{3, 6, 4, 7, 1, 8, 4, 2, 3, 2};
  std::vector<WeightedKey> items;
  for (KeyId k = 0; k < weights.size(); ++k) {
    items.push_back({k, weights[k], {k, 0}});
  }
  // Hierarchy of Figure 1: leaf groups {1,2}, {3,4}, {5}, {6,7}, {8,9,10}.
  const std::vector<int> parent{-1, 0, 0, 0, 0, 0, 1, 1, 2, 2, 4, 4, 5, 5, 5};
  const Hierarchy h = Hierarchy::FromParents(parent);

  const double s = 4.0;
  Rng rng(1);
  const SummarizeResult result = HierarchySummarize(items, h, s, &rng);

  std::printf("leaf :");
  for (KeyId k = 0; k < 10; ++k) std::printf(" %4u", k + 1);
  std::printf("\nIPPS :");
  for (double p : result.probs) std::printf(" %4.1f", p);
  std::printf("\npick :");
  std::vector<char> chosen(10, 0);
  for (const auto& e : result.sample.entries()) chosen[e.id] = 1;
  for (KeyId k = 0; k < 10; ++k) std::printf(" %4c", chosen[k] ? '*' : '.');
  std::printf("\n\nsample size: %zu (expected exactly 4)\n",
              result.sample.size());

  std::printf("\nper-node sample counts vs expectations:\n");
  for (int v = 0; v < h.num_nodes(); ++v) {
    if (h.is_leaf(v)) continue;
    double expect = 0.0;
    int actual = 0;
    for (std::size_t r = h.leaf_begin(v); r < h.leaf_end(v); ++r) {
      expect += result.probs[h.key_at_rank(r)];
      actual += chosen[h.key_at_rank(r)];
    }
    std::printf("  node %2d covers leaves %zu..%zu: expected %.1f, got %d "
                "(floor/ceil: %s)\n",
                v, h.leaf_begin(v) + 1, h.leaf_end(v), expect, actual,
                (actual == static_cast<int>(std::floor(expect)) ||
                 actual == static_cast<int>(std::ceil(expect)))
                    ? "yes"
                    : "NO — bug!");
  }
  return 0;
}
