// Live serving demo: one ingest thread streams timestamped flow records
// into a serve-wrapped windowed builder ("serve:windowed:...") while
// concurrent reader threads answer box and subset queries against the
// lock-free published snapshots — the structure the serving tier exists
// for (src/serve/, docs/serving.md).
//
// The ingest thread replays a synthetic flow trace (data/network_gen)
// spread over `hours` hours of simulated time; every 10-minute bucket
// crossing republishes the merged one-hour window through the
// QueryService. Four reader threads acquire snapshot handles and issue
// drill-down queries continuously (each read is one epoch pin + one atomic
// load — no locks, no waiting on ingest), checking on every read that the
// snapshot they hold is internally consistent: the accelerated
// EstimateIdRange must reproduce the snapshot sample's linear
// EstimateSubset bit for bit, and the alias table must draw entries that
// exist. Exits non-zero if any reader ever observes an inconsistency.
//
//   $ ./serve_monitor [pairs=30000] [s=1500] [hours=4] [--telemetry[=prom|json]]
//
// --telemetry arms the process metrics registry and prints the serving
// counters (sas.serve.publishes / reclaimed, the epoch gauge, publish and
// query latency histograms) next to the ingest metrics.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "core/random.h"
#include "core/telemetry.h"
#include "data/network_gen.h"
#include "serve/query_service.h"
#include "serve/servable.h"
#include "window/windowed.h"

namespace {

using namespace sas;

constexpr double kHour = 3600.0;

struct ReaderStats {
  std::uint64_t reads = 0;
  std::uint64_t draws = 0;
  bool mismatch = false;
};

/// Reader loop: acquire, drill down, verify bit-identity, draw. Runs until
/// `stop`; one Reader (epoch slot) per thread.
void ReaderLoop(QueryService* svc, std::atomic<bool>* stop,
                std::uint64_t seed, ReaderStats* out) {
  QueryService::Reader reader(*svc);
  Rng rng(seed);
  // sas-lint: allow(unforked-rng) — demo-local query generator.
  while (!stop->load(std::memory_order_acquire)) {
    SnapshotHandle snap = reader.TryAcquire();
    if (!snap) continue;  // nothing published yet
    ++out->reads;

    // A random id drill-down: the accelerated estimate must be
    // bit-identical to the linear scan over the same snapshot.
    const KeyId lo = static_cast<KeyId>(rng.NextBounded(1u << 16));
    const KeyId hi = lo + 1 + static_cast<KeyId>(rng.NextBounded(1u << 14));
    const Weight fast =
        snap->EstimateIdRange(lo, hi, &reader.scratch());
    Weight linear = 0.0;
    for (const WeightedKey& e : snap->sample().entries()) {
      if (e.id >= lo && e.id < hi) linear += snap->sample().AdjustedWeight(e);
    }
    if (fast != linear) out->mismatch = true;

    // Sample-proportional drawdown: the drawn entry must exist.
    if (snap->size() > 0) {
      const WeightedKey& drawn = snap->Draw(&rng);
      if (!(drawn.weight >= 0.0)) out->mismatch = true;
      ++out->draws;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pairs = 30000;
  double s = 1500.0;
  double hours = 4.0;
  bool telemetry_on = false;
  std::string telemetry_format = "table";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) {
      pairs = static_cast<std::size_t>(std::strtoull(argv[i] + 6, nullptr, 10));
    }
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atof(argv[i] + 2);
    if (std::strncmp(argv[i], "hours=", 6) == 0) {
      hours = std::atof(argv[i] + 6);
    }
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry_on = true;
    if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_on = true;
      telemetry_format = argv[i] + 12;
    }
  }
  if (telemetry_on) telemetry::SetEnabled(true);

  // One-hour window at 10-minute buckets, served: every bucket crossing
  // republishes the merged window through the QueryService.
  SummarizerConfig cfg;
  cfg.s = s;
  cfg.seed = 2011;
  auto builder = MakeSummarizer("serve:windowed:3600:6:obliv", cfg);
  ServableSummarizer* servable = builder->AsServable();
  WindowedSummarizer* win = builder->AsWindowed();
  if (servable == nullptr || win == nullptr) {
    std::fprintf(stderr, "serve:windowed builder missing a capability\n");
    return 1;
  }
  auto service = servable->service();

  // Synthetic flow records (clustered address space, Pareto flow sizes),
  // replayed in arrival order over the simulated interval.
  NetworkConfig gen_cfg;
  gen_cfg.num_pairs = pairs;
  gen_cfg.num_sources = pairs / 5;
  gen_cfg.num_dests = pairs / 6;
  gen_cfg.bits = 24;
  gen_cfg.seed = 424242;
  const std::vector<WeightedKey> flows = GenerateNetwork(gen_cfg).items;
  const double horizon = hours * kHour;

  std::printf("serve_monitor: %zu flows over %.1f h into %s (s=%.0f), "
              "4 readers\n",
              flows.size(), hours, "serve:windowed:3600:6:obliv", s);

  std::atomic<bool> stop{false};
  std::vector<ReaderStats> stats(4);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < stats.size(); ++r) {
    readers.emplace_back(ReaderLoop, service.get(), &stop, 7000 + r,
                         &stats[r]);
  }

  // Ingest thread is this one: replay the trace against simulated time.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double ts =
        horizon * static_cast<double>(i) / static_cast<double>(flows.size());
    win->AddTimed(ts, flows[i]);
  }
  win->Advance(horizon);  // final publish of the complete last window
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  std::uint64_t reads = 0;
  std::uint64_t draws = 0;
  bool mismatch = false;
  for (const ReaderStats& st : stats) {
    reads += st.reads;
    draws += st.draws;
    mismatch = mismatch || st.mismatch;
  }

  std::printf("publishes=%llu reclaimed=%llu pending=%zu epoch=%llu\n",
              static_cast<unsigned long long>(service->publishes()),
              static_cast<unsigned long long>(service->reclaimed()),
              service->retired_pending(),
              static_cast<unsigned long long>(service->epoch()));
  std::printf("reads=%llu draws=%llu mismatches=%s\n",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(draws),
              mismatch ? "YES" : "none");

  if (telemetry_on) {
    const telemetry::TelemetrySnapshot snap = builder->DescribeTelemetry();
    if (telemetry_format == "prom") {
      std::printf("\n%s", telemetry::ToPrometheus(snap).c_str());
    } else if (telemetry_format == "json") {
      std::printf("\n%s\n", telemetry::ToJson(snap).c_str());
    } else {
      std::printf("\ntelemetry snapshot:\n");
      for (const auto& c : snap.counters) {
        if (c.value > 0) {
          std::printf("  %-34s %12llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value));
        }
      }
      for (const auto& g : snap.gauges) {
        if (g.value != 0) {
          std::printf("  %-34s %12lld\n", g.name.c_str(),
                      static_cast<long long>(g.value));
        }
      }
    }
  }

  if (mismatch) {
    std::fprintf(stderr, "FAIL: a reader observed a bit-identity mismatch\n");
    return 1;
  }
  if (service->publishes() == 0) {
    std::fprintf(stderr, "FAIL: nothing was published\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
