// Tech-ticket drill-down scenario (Section 6.1): summarize customer-care
// trouble tickets keyed by (trouble code, network location) with the
// two-pass structure-aware sampler from the registry, then drill down the
// trouble-code hierarchy estimating per-subtree ticket volume from the
// sample, with exact answers for comparison. Exits nonzero if the
// drill-down estimates are wildly off, so CI can smoke-test it.
//
//   $ ./ticket_explorer [pairs=50000] [s=2000]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>

#include "api/registry.h"
#include "data/techticket_gen.h"
#include "summaries/exact_summary.h"

int main(int argc, char** argv) {
  using namespace sas;
  std::size_t pairs = 50000, s = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) pairs = std::atol(argv[i] + 6);
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atol(argv[i] + 2);
  }

  TechTicketConfig cfg;
  cfg.num_pairs = pairs;
  const Dataset2D ds = GenerateTechTicket(cfg);
  std::printf("ticket table: %zu (code, location) pairs, %.0f tickets\n",
              ds.items.size(), ds.total_weight());

  SummarizerConfig scfg;
  scfg.s = static_cast<double>(s);
  scfg.seed = 7;
  scfg.structure = StructureSpec::Product();
  std::unique_ptr<RangeSummary> summary;
  try {
    summary = BuildSummary(keys::kAware, scfg, ds.items);
  } catch (const std::exception& e) {
    std::printf("FAIL: %s\n", e.what());
    return 1;
  }
  std::printf("summary: %zu keys (%.2f%% of the table)\n\n",
              summary->SizeInElements(),
              100.0 * summary->SizeInElements() / ds.items.size());

  bool ok = true;
  // The drill-down follows heavy subtrees, so estimates there must be
  // reasonably tight; tolerate more noise on light subtrees.
  auto check = [&ok, &ds](Weight est, Weight exact) {
    if (!std::isfinite(est)) ok = false;
    if (exact > 0.02 * ds.total_weight() &&
        std::fabs(est - exact) / exact > 0.5) {
      ok = false;
    }
  };

  // Drill down: at each level of the trouble-code hierarchy, estimate the
  // ticket volume of every child of the current node and descend into the
  // largest.
  const Hierarchy& hx = *ds.hx;
  int node = hx.root();
  int level = 0;
  while (!hx.is_leaf(node) && level < 4) {
    std::printf("level %d: children of code-subtree [%llu, %llu):\n", level,
                static_cast<unsigned long long>(hx.coord_range(node).lo),
                static_cast<unsigned long long>(hx.coord_range(node).hi));
    int best = -1;
    Weight best_est = -1.0;
    for (int c : hx.children(node)) {
      const Box box{hx.coord_range(c), {0, ds.domain.y.size()}};
      const Weight est = summary->EstimateBox(box);
      const Weight exact = ExactBoxSum(ds.items, box);
      check(est, exact);
      std::printf("    subtree [%10llu, %10llu): est %10.0f  exact %10.0f "
                  " (%+5.1f%%)\n",
                  static_cast<unsigned long long>(hx.coord_range(c).lo),
                  static_cast<unsigned long long>(hx.coord_range(c).hi), est,
                  exact, exact > 0 ? 100.0 * (est - exact) / exact : 0.0);
      if (est > best_est) {
        best_est = est;
        best = c;
      }
    }
    node = best;
    ++level;
  }

  // Cross-dimensional slice: tickets for the drilled-down code subtree
  // in the first half of the location space.
  const Box slice{hx.coord_range(node), {0, ds.domain.y.size() / 2}};
  const Weight est = summary->EstimateBox(slice);
  const Weight exact = ExactBoxSum(ds.items, slice);
  check(est, exact);
  std::printf("\nslice query (drilled code subtree x first-half locations): "
              "est %.0f exact %.0f (%+.1f%%)\n",
              est, exact, exact > 0 ? 100.0 * (est - exact) / exact : 0.0);

  if (!ok) {
    std::printf("FAIL: a drill-down estimate was non-finite or off by > "
                "50%% on a heavy subtree\n");
    return 1;
  }
  return 0;
}
