// Tech-ticket drill-down scenario (Section 6.1): summarize customer-care
// trouble tickets keyed by (trouble code, network location), then drill
// down the trouble-code hierarchy estimating per-subtree ticket volume
// from the sample, with exact answers for comparison.
//
//   $ ./ticket_explorer [pairs=50000] [s=2000]

#include <cstdio>
#include <cstring>

#include "aware/two_pass.h"
#include "data/techticket_gen.h"
#include "summaries/exact_summary.h"

int main(int argc, char** argv) {
  using namespace sas;
  std::size_t pairs = 50000, s = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) pairs = std::atol(argv[i] + 6);
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atol(argv[i] + 2);
  }

  TechTicketConfig cfg;
  cfg.num_pairs = pairs;
  const Dataset2D ds = GenerateTechTicket(cfg);
  std::printf("ticket table: %zu (code, location) pairs, %.0f tickets\n",
              ds.items.size(), ds.total_weight());

  Rng rng(7);
  const Sample sample = TwoPassProductSample(
      ds.items, static_cast<double>(s), TwoPassConfig{}, &rng);
  std::printf("summary: %zu keys (%.2f%% of the table)\n\n", sample.size(),
              100.0 * sample.size() / ds.items.size());

  // Drill down: at each level of the trouble-code hierarchy, estimate the
  // ticket volume of every child of the current node and descend into the
  // largest.
  const Hierarchy& hx = *ds.hx;
  int node = hx.root();
  int level = 0;
  while (!hx.is_leaf(node) && level < 4) {
    std::printf("level %d: children of code-subtree [%llu, %llu):\n", level,
                static_cast<unsigned long long>(hx.coord_range(node).lo),
                static_cast<unsigned long long>(hx.coord_range(node).hi));
    int best = -1;
    Weight best_est = -1.0;
    for (int c : hx.children(node)) {
      const Box box{hx.coord_range(c), {0, ds.domain.y.size()}};
      const Weight est = sample.EstimateBox(box);
      const Weight exact = ExactBoxSum(ds.items, box);
      std::printf("    subtree [%10llu, %10llu): est %10.0f  exact %10.0f "
                  " (%+5.1f%%)\n",
                  static_cast<unsigned long long>(hx.coord_range(c).lo),
                  static_cast<unsigned long long>(hx.coord_range(c).hi), est,
                  exact, exact > 0 ? 100.0 * (est - exact) / exact : 0.0);
      if (est > best_est) {
        best_est = est;
        best = c;
      }
    }
    node = best;
    ++level;
  }

  // Cross-dimensional slice: tickets for the drilled-down code subtree
  // in the first half of the location space.
  const Box slice{hx.coord_range(node), {0, ds.domain.y.size() / 2}};
  const Weight est = sample.EstimateBox(slice);
  const Weight exact = ExactBoxSum(ds.items, slice);
  std::printf("\nslice query (drilled code subtree x first-half locations): "
              "est %.0f exact %.0f (%+.1f%%)\n",
              est, exact, exact > 0 ? 100.0 * (est - exact) / exact : 0.0);
  return 0;
}
