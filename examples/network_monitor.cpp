// Network monitoring scenario (Example 1 of the paper): summarize a day of
// IP flow records with a structure-aware sample and answer the ad-hoc
// analysis questions the paper motivates — traffic between subnetworks and
// the share of a port-range-like slice — comparing against an oblivious
// sample of the same size.
//
//   $ ./network_monitor [pairs=40000] [s=2000]

#include <cstdio>
#include <cstring>

#include "api/registry.h"
#include "data/network_gen.h"
#include "structure/hierarchy.h"
#include "summaries/exact_summary.h"

int main(int argc, char** argv) {
  using namespace sas;
  std::size_t pairs = 40000, s = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) pairs = std::atol(argv[i] + 6);
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atol(argv[i] + 2);
  }

  NetworkConfig cfg;
  cfg.num_pairs = pairs;
  cfg.num_sources = pairs / 5;
  cfg.num_dests = pairs / 6;
  cfg.bits = 32;  // full IPv4 space
  const Dataset2D ds = GenerateNetwork(cfg);
  std::printf("flow table: %zu (src,dst) pairs over a 2^32 x 2^32 space, "
              "%.1f total bytes-weight\n",
              ds.items.size(), ds.total_weight());

  // Build both summaries through the registry: the two-pass structure-aware
  // product sampler and the one-pass oblivious VarOpt baseline.
  auto build = [&](const char* key) {
    SummarizerConfig cfg2;
    cfg2.s = static_cast<double>(s);
    cfg2.seed = 99;
    cfg2.structure = StructureSpec::Product();
    return BuildSummary(key, cfg2, ds.items);
  };
  const auto aware_summary = build(keys::kAware);
  const auto obliv_summary = build(keys::kObliv);
  const Sample& aware = aware_summary->AsSample()->sample();
  const Sample& obliv = obliv_summary->AsSample()->sample();
  std::printf("summaries: aware=%zu keys, obliv=%zu keys\n\n", aware.size(),
              obliv.size());

  // Q1: traffic between two /8-style subnetworks (prefix boxes). Use the
  // busiest /8 pair so the query is meaningful on synthetic data.
  const Hierarchy& hx = *ds.hx;
  int src_node = hx.root();
  // Descend to a depth-2 node with many leaves (a busy prefix).
  for (int step = 0; step < 2 && !hx.is_leaf(src_node); ++step) {
    int best = hx.children(src_node)[0];
    for (int c : hx.children(src_node)) {
      if (hx.leaf_end(c) - hx.leaf_begin(c) >
          hx.leaf_end(best) - hx.leaf_begin(best)) {
        best = c;
      }
    }
    src_node = best;
  }
  const Interval src_range = hx.coord_range(src_node);
  const Box subnet_query{src_range, {0, ds.domain.y.size()}};
  const Weight exact1 = ExactBoxSum(ds.items, subnet_query);
  std::printf("Q1: traffic from prefix block [%llu, %llu):\n",
              static_cast<unsigned long long>(src_range.lo),
              static_cast<unsigned long long>(src_range.hi));
  std::printf("    exact %12.1f | aware %12.1f (%+.2f%%) | obliv %12.1f "
              "(%+.2f%%)\n\n",
              exact1, aware.EstimateBox(subnet_query),
              100.0 * (aware.EstimateBox(subnet_query) - exact1) / exact1,
              obliv.EstimateBox(subnet_query),
              100.0 * (obliv.EstimateBox(subnet_query) - exact1) / exact1);

  // Q2: a multi-range query — three disjoint destination prefixes from the
  // destination hierarchy (the kind of "collection of ranges" query
  // dedicated summaries degrade on).
  MultiRangeQuery q2;
  {
    // Three disjoint depth-2 prefix nodes of the destination hierarchy
    // (grandchildren of the root cover disjoint dyadic ranges).
    const Hierarchy& hy = *ds.hy;
    for (int c : hy.children(hy.root())) {
      if (hy.is_leaf(c)) continue;
      for (int g : hy.children(c)) {
        if (q2.boxes.size() < 3) {
          q2.boxes.push_back({{0, ds.domain.x.size()}, hy.coord_range(g)});
        }
      }
    }
  }
  const Weight exact2 = ExactQuerySum(ds.items, q2);
  std::printf("Q2: traffic to 3 disjoint destination blocks:\n");
  std::printf("    exact %12.1f | aware %12.1f (%+.2f%%) | obliv %12.1f "
              "(%+.2f%%)\n\n",
              exact2, aware.EstimateQuery(q2),
              100.0 * (aware.EstimateQuery(q2) - exact2) / exact2,
              obliv.EstimateQuery(q2),
              100.0 * (obliv.EstimateQuery(q2) - exact2) / exact2);

  // Q3: representative keys — the top flows inside the Q1 prefix, straight
  // from the sample (dedicated summaries cannot return example keys).
  std::printf("Q3: three sampled example flows inside the Q1 prefix:\n");
  int shown = 0;
  for (const auto& e : aware.entries()) {
    if (subnet_query.Contains(e.pt) && shown < 3) {
      std::printf("    src=%llu dst=%llu adjusted-bytes=%.1f\n",
                  static_cast<unsigned long long>(e.pt.x),
                  static_cast<unsigned long long>(e.pt.y),
                  aware.AdjustedWeight(e));
      ++shown;
    }
  }
  if (shown == 0) std::printf("    (no sampled keys in prefix)\n");
  return 0;
}
