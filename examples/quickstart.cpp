// Quickstart: build a structure-aware sample of a small weighted dataset
// and answer range and subset queries from it.
//
//   $ ./quickstart

#include <cstdio>
#include <vector>

#include "aware/product_summarizer.h"
#include "core/random.h"
#include "summaries/exact_summary.h"

int main() {
  using namespace sas;

  // 1. Some weighted 2-D keys (e.g. (region, product) -> sales).
  Rng rng(2026);
  std::vector<WeightedKey> data;
  for (KeyId id = 0; id < 10000; ++id) {
    WeightedKey k;
    k.id = id;
    k.pt = {rng.NextBounded(1 << 16), rng.NextBounded(1 << 16)};
    k.weight = rng.NextPareto(1.3);  // heavy-tailed weights
    data.push_back(k);
  }
  std::printf("dataset: %zu keys, total weight %.1f\n", data.size(),
              TotalWeight(data));

  // 2. Build a structure-aware VarOpt sample of 500 keys (Section 4 of the
  //    paper: IPPS probabilities + kd-tree + bottom-up pair aggregation).
  const SummarizeResult result = ProductSummarize(data, 500.0, &rng);
  std::printf("sample: %zu keys, IPPS threshold tau = %.3f\n",
              result.sample.size(), result.tau);

  // 3. Range query: estimate the weight in a box, compare to the truth.
  const Box box{{1000, 30000}, {5000, 42000}};
  const Weight est = result.sample.EstimateBox(box);
  const Weight exact = ExactBoxSum(data, box);
  std::printf("box query:    estimate %10.1f   exact %10.1f   error %.2f%%\n",
              est, exact, 100.0 * (est - exact) / exact);

  // 4. Arbitrary subset query — the flexibility dedicated summaries lack.
  const auto pred = [](const WeightedKey& k) { return k.pt.x % 3 == 0; };
  const Weight est_subset = result.sample.EstimateSubset(pred);
  Weight exact_subset = 0.0;
  for (const auto& k : data) {
    if (pred(k)) exact_subset += k.weight;
  }
  std::printf("subset query: estimate %10.1f   exact %10.1f   error %.2f%%\n",
              est_subset, exact_subset,
              100.0 * (est_subset - exact_subset) / exact_subset);
  return 0;
}
