// Quickstart: build a structure-aware sample of a small weighted dataset
// through the registry API and answer range and subset queries from it.
// Exits nonzero if any estimate is wildly off, so CI can smoke-test it.
//
//   $ ./quickstart

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/registry.h"
#include "core/random.h"
#include "summaries/exact_summary.h"

int main() {
  using namespace sas;

  // 1. Some weighted 2-D keys (e.g. (region, product) -> sales).
  Rng rng(2026);
  std::vector<WeightedKey> data;
  for (KeyId id = 0; id < 10000; ++id) {
    WeightedKey k;
    k.id = id;
    k.pt = {rng.NextBounded(1 << 16), rng.NextBounded(1 << 16)};
    k.weight = rng.NextPareto(1.3);  // heavy-tailed weights
    data.push_back(k);
  }
  std::printf("dataset: %zu keys, total weight %.1f\n", data.size(),
              TotalWeight(data));

  // 2. Build a structure-aware VarOpt sample of 500 keys (Section 4 of the
  //    paper) through the registry: configure, add, finalize.
  SummarizerConfig cfg;
  cfg.s = 500;
  cfg.seed = 2026;
  cfg.structure = StructureSpec::Product();
  auto builder = MakeSummarizer(keys::kProduct, cfg);
  for (const WeightedKey& k : data) builder->Add(k);
  const auto summary = builder->Finalize();
  const SampleSummary& sample = *summary->AsSample();
  std::printf("sample: %zu keys, IPPS threshold tau = %.3f\n",
              summary->SizeInElements(), sample.tau());

  bool ok = true;
  auto check = [&ok](double est, double exact) {
    const double rel = std::fabs(est - exact) / std::max(exact, 1e-9);
    if (!std::isfinite(est) || rel > 0.5) ok = false;
    return 100.0 * (est - exact) / exact;
  };

  // 3. Range query: estimate the weight in a box, compare to the truth.
  const Box box{{1000, 30000}, {5000, 42000}};
  const Weight est = summary->EstimateBox(box);
  const Weight exact = ExactBoxSum(data, box);
  std::printf("box query:    estimate %10.1f   exact %10.1f   error %.2f%%\n",
              est, exact, check(est, exact));

  // 4. Arbitrary subset query — the flexibility dedicated summaries lack.
  const auto pred = [](const WeightedKey& k) { return k.pt.x % 3 == 0; };
  const Weight est_subset = sample.sample().EstimateSubset(pred);
  Weight exact_subset = 0.0;
  for (const auto& k : data) {
    if (pred(k)) exact_subset += k.weight;
  }
  std::printf("subset query: estimate %10.1f   exact %10.1f   error %.2f%%\n",
              est_subset, exact_subset, check(est_subset, exact_subset));

  if (!ok) {
    std::printf("FAIL: an estimate was non-finite or off by > 50%%\n");
    return 1;
  }
  return 0;
}
