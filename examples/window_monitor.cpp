// Sliding-window network monitoring: ingest a timestamped CSV flow trace
// through the windowed backend and answer "last hour" questions while the
// stream is live — the continuous-traffic serving scenario behind the
// "windowed:<W>:<B>:<inner>" registry key.
//
// The program synthesizes a day-fragment of flow records (data/network_gen),
// spreads them over `hours` hours of simulated time, serializes them to the
// CSV trace format of data/trace_reader.h, and replays the trace into
//   windowed:3600:6:obliv
// (a one-hour window at 10-minute bucket granularity). At every hour mark it
// queries the window and checks the estimates against the exact live-window
// traffic: the merged VarOpt sample preserves the window total exactly (up
// to floating point), and box estimates land within sampling tolerance.
// Exits non-zero if any checkpoint total drifts.
//
//   $ ./window_monitor [pairs=30000] [s=1500] [hours=6] [trace=path.csv]
//                      [--telemetry[=json|prom|trace]]
//
// With trace=..., the CSV file is replayed instead of the synthetic trace
// (columns: timestamp,key,weight[,x[,y]]; the exact-total check is applied
// with the same window rule).
//
// --telemetry arms the process metrics registry (core/telemetry.h) and
// prints a final snapshot: a human-readable table by default, Prometheus
// text with =prom, the sas_stats JSON with =json; =trace additionally
// writes the recorded spans to window_monitor_trace.json in Chrome
// trace-event format (load in chrome://tracing or pipe the JSON through
// tools/sas_stats.py).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/telemetry.h"
#include "data/network_gen.h"
#include "data/trace_reader.h"
#include "window/windowed.h"

namespace {

using namespace sas;

constexpr double kHour = 3600.0;

/// Exact total / box sums over the records the window currently covers:
/// the bucket rule (epoch > current epoch - B) applied to each record's
/// ingest epoch. Records are replayed in timestamp order, so the ingest
/// epoch is the timestamp's epoch.
struct WindowExact {
  Weight total = 0.0;
  Weight in_box = 0.0;
};

WindowExact ExactOverWindow(const std::vector<TimedItem>& trace, double now,
                            const WindowedSummarizer& win, const Box& box) {
  WindowExact exact;
  const std::int64_t cur = win.EpochOf(now);
  for (const TimedItem& r : trace) {
    if (r.ts > now) break;  // trace is sorted by timestamp
    if (win.EpochOf(r.ts) <= cur - win.buckets()) continue;  // expired
    if (r.item.weight <= 0.0) continue;
    exact.total += r.item.weight;
    if (box.Contains(r.item.pt)) exact.in_box += r.item.weight;
  }
  return exact;
}

std::string SynthesizeTraceCsv(std::size_t pairs, double total_time,
                               Coord* domain_size) {
  NetworkConfig cfg;
  cfg.num_pairs = pairs;
  cfg.num_sources = pairs / 5;
  cfg.num_dests = pairs / 6;
  cfg.bits = 24;
  const Dataset2D ds = GenerateNetwork(cfg);
  *domain_size = ds.domain.x.size();

  // Spread flow arrivals uniformly over the simulated interval and emit
  // them in time order, the shape a collector's log would have.
  Rng rng(2026);
  std::vector<TimedItem> records;
  records.reserve(ds.items.size());
  for (const WeightedKey& it : ds.items) {
    records.push_back({total_time * rng.NextDouble(), it});
  }
  std::sort(records.begin(), records.end(),
            [](const TimedItem& a, const TimedItem& b) { return a.ts < b.ts; });

  std::ostringstream csv;
  csv << "timestamp,key,bytes,src,dst\n";
  char line[160];
  for (const TimedItem& r : records) {
    std::snprintf(line, sizeof(line), "%.3f,%u,%.3f,%llu,%llu\n", r.ts,
                  r.item.id, r.item.weight,
                  static_cast<unsigned long long>(r.item.pt.x),
                  static_cast<unsigned long long>(r.item.pt.y));
    csv << line;
  }
  return csv.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pairs = 30000, s = 1500;
  double hours = 6.0;
  std::string trace_path;
  bool telemetry_on = false;
  std::string telemetry_format = "table";  // table | json | prom | trace
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "pairs=", 6) == 0) pairs = std::atol(argv[i] + 6);
    if (std::strncmp(argv[i], "s=", 2) == 0) s = std::atol(argv[i] + 2);
    if (std::strncmp(argv[i], "hours=", 6) == 0) hours = std::atof(argv[i] + 6);
    if (std::strncmp(argv[i], "trace=", 6) == 0) trace_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry_on = true;
    if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      telemetry_on = true;
      telemetry_format = argv[i] + 12;
      if (telemetry_format != "json" && telemetry_format != "prom" &&
          telemetry_format != "trace") {
        std::fprintf(stderr,
                     "unknown --telemetry format \"%s\" (json|prom|trace)\n",
                     telemetry_format.c_str());
        return 2;
      }
    }
  }
  if (telemetry_on) telemetry::SetEnabled(true);
  const double total_time = hours * kHour;

  // Assemble the trace stream: a file when given, else the synthetic CSV.
  Coord domain_size = Coord{1} << 24;
  std::ifstream file;
  std::istringstream synthetic;
  std::istream* in = nullptr;
  if (!trace_path.empty()) {
    file.open(trace_path);
    if (!file) {
      std::fprintf(stderr, "cannot open trace file %s\n", trace_path.c_str());
      return 1;
    }
    in = &file;
  } else {
    synthetic.str(SynthesizeTraceCsv(pairs, total_time, &domain_size));
    in = &synthetic;
  }

  // One-hour window at 10-minute bucket granularity over the one-pass
  // oblivious sampler; swap the inner key for any mergeable method.
  const std::string key = "windowed:3600:6:obliv";
  SummarizerConfig cfg;
  cfg.s = static_cast<double>(s);
  cfg.seed = 99;
  // A live collector feed is untrusted input: quarantine corrupt records
  // (counted below) instead of stalling the monitor on the first bad row.
  cfg.ingest_policy = IngestPolicy::kQuarantine;
  auto builder = MakeSummarizer(key, cfg);
  WindowedSummarizer* win = builder->AsWindowed();

  std::printf("replaying trace into %s (s=%zu, %.0f-minute staleness)\n\n",
              key.c_str(), s, win->bucket_span() / 60.0);
  // Watch the quadrant the first flow lands in (the clustered address space
  // concentrates mass unevenly, so a fixed quadrant could be empty).
  Box watch_box{{0, 0}, {0, 0}};
  bool box_chosen = false;

  TraceReader reader(*in);
  std::vector<TimedItem> batch;
  std::vector<TimedItem> replayed;  // retained for the exact checks
  double next_checkpoint = kHour;
  int failures = 0;
  std::printf("%10s %14s %14s %9s %14s %14s %8s\n", "t", "exact-total",
              "est-total", "buckets", "exact-box", "est-box", "box-err");
  auto checkpoint = [&](double t) {
    const Sample& window = win->QueryAt(t);
    const WindowExact exact = ExactOverWindow(replayed, t, *win, watch_box);
    const Weight est_total = window.EstimateTotal();
    const Weight est_box = window.EstimateBox(watch_box);
    const double total_err =
        exact.total > 0.0 ? std::fabs(est_total / exact.total - 1.0) : 0.0;
    const double box_err =
        exact.in_box > 0.0 ? std::fabs(est_box / exact.in_box - 1.0) : 0.0;
    std::printf("%9.0fs %14.1f %14.1f %9d %14.1f %14.1f %7.2f%%\n", t,
                exact.total, est_total, win->live_buckets(), exact.in_box,
                est_box, 100.0 * box_err);
    // The VarOpt merge preserves the live-window total exactly (up to
    // floating-point accumulation); a drift here is a correctness bug.
    if (total_err > 1e-6) {
      std::fprintf(stderr, "FAIL: window total drifted %.3g at t=%.0f\n",
                   total_err, t);
      ++failures;
    }
  };

  while (reader.NextBatch(&batch)) {
    for (const TimedItem& r : batch) {
      if (!box_chosen) {
        const Coord half = domain_size / 2;
        watch_box.x = r.item.pt.x < half ? Interval{0, half}
                                         : Interval{half, domain_size};
        watch_box.y = r.item.pt.y < half ? Interval{0, half}
                                         : Interval{half, domain_size};
        box_chosen = true;
      }
      while (r.ts >= next_checkpoint) {
        checkpoint(next_checkpoint);
        next_checkpoint += kHour;
      }
      win->AddTimed(r.ts, r.item);
      replayed.push_back(r);
    }
  }
  checkpoint(std::max(next_checkpoint - kHour, win->now()));

  const TraceStats& ts = reader.stats();
  const IngestStats& ingest = builder->Describe();
  std::printf("\ntrace: %zu rows parsed, %zu malformed, %zu non-finite\n",
              ts.parsed, ts.malformed, ts.nonfinite);
  if (telemetry_on) {
    const telemetry::TelemetrySnapshot snap = builder->DescribeTelemetry();
    if (telemetry_format == "prom") {
      std::printf("\n%s", telemetry::ToPrometheus(snap).c_str());
    } else if (telemetry_format == "json") {
      std::printf("\n%s\n", telemetry::ToJson(snap).c_str());
    } else {
      std::printf("\ntelemetry snapshot:\n");
      for (const auto& c : snap.counters) {
        if (c.value > 0) {
          std::printf("  %-34s %12llu\n", c.name.c_str(),
                      static_cast<unsigned long long>(c.value));
        }
      }
      for (const auto& g : snap.gauges) {
        if (g.value != 0) {
          std::printf("  %-34s %12lld\n", g.name.c_str(),
                      static_cast<long long>(g.value));
        }
      }
      std::printf("  %-34s %8s %10s %10s %10s %10s\n", "histogram", "count",
                  "p50", "p90", "p99", "max");
      for (const auto& h : snap.histograms) {
        if (h.count == 0) continue;
        std::printf("  %-34s %8llu %10.0f %10.0f %10.0f %10llu\n",
                    h.name.c_str(),
                    static_cast<unsigned long long>(h.count), h.Quantile(0.5),
                    h.Quantile(0.9), h.Quantile(0.99),
                    static_cast<unsigned long long>(h.max));
      }
      if (telemetry_format == "trace") {
        const char* path = "window_monitor_trace.json";
        std::ofstream trace_out(path);
        trace_out << telemetry::ChromeTraceJson();
        std::printf("\nwrote span trace to %s (chrome://tracing)\n", path);
      }
    }
  }
  std::printf("ingest: %llu accepted, %llu quarantined (weight), "
              "%llu quarantined (time), %llu budget degradations\n",
              static_cast<unsigned long long>(ingest.accepted),
              static_cast<unsigned long long>(ingest.rejected_weight),
              static_cast<unsigned long long>(ingest.rejected_coord),
              static_cast<unsigned long long>(ingest.degradations));
  std::printf("window: %zu merges, %zu bucket builders recycled\n",
              win->merges_performed(), win->recycled_builders());
  if (failures > 0) return 1;
  std::printf("all checkpoint totals exact within 1e-6\n");
  return 0;
}
