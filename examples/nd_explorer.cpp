// 4-dimensional workload end to end: generate a clustered 4-d cloud, build
// the general d-dimensional structure-aware sample ("nd" key) through the
// registry/harness path, and answer 4-d box queries from it — alongside the
// structure-oblivious baseline for contrast. Exits nonzero if any estimate
// is wildly off, so CI can smoke-test it.
//
//   $ ./nd_explorer [points=20000] [s=1000] [dims=4]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "api/registry.h"
#include "data/nd_gen.h"
#include "eval/harness.h"

namespace {

std::size_t ArgOr(int argc, char** argv, const char* name,
                  std::size_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sas;

  NdCloudConfig gen;
  gen.num_points = ArgOr(argc, argv, "points", 20000);
  gen.dims = static_cast<int>(ArgOr(argc, argv, "dims", 4));
  gen.seed = 777;
  const std::size_t s = ArgOr(argc, argv, "s", 1000);
  if (gen.dims < 1 || gen.dims > 16 || gen.num_points < 1 || s < 1) {
    std::printf("FAIL: dims must be in [1, 16], points/s >= 1\n");
    return 1;
  }

  DatasetNd ds;
  try {
    ds = GenerateNdCloud(gen);
  } catch (const std::invalid_argument& e) {
    std::printf("FAIL: %s\n", e.what());
    return 1;
  }
  std::printf("dataset: %zu points in %d-D (2^%d per axis), total weight "
              "%.1f\n",
              ds.num_points(), ds.dims, ds.axis_bits, ds.total_weight());

  // Build the d-dimensional structure-aware sample and the oblivious
  // baseline through the same harness path the benches use.
  const auto built =
      BuildMethodsNd(ds, s, {keys::kNd, keys::kObliv}, /*seed=*/2026);
  for (const auto& b : built) {
    std::printf("built %-6s  %zu entries  %.1f ms\n",
                b.summary->Name().c_str(), b.summary->SizeInElements(),
                1e3 * b.build_seconds);
  }

  // A battery of d-dimensional box queries with exact answers.
  Rng rng(99);
  const NdQueryBattery battery =
      UniformVolumeQueriesNd(ds, /*num_queries=*/40, /*max_frac=*/0.5, &rng);

  bool ok = true;
  for (const auto& b : built) {
    const BatteryResult r = EvaluateOnBatteryNd(b, battery, ds);
    std::printf("%-6s  mean |err|/W = %.4f   max = %.4f   (%zu queries, "
                "%.2f ms)\n",
                r.method.c_str(), r.errors.mean_abs, r.errors.max_abs,
                r.errors.count, 1e3 * r.query_seconds);
    if (!std::isfinite(r.errors.mean_abs) || r.errors.mean_abs > 0.05) {
      ok = false;
    }
  }

  // One spelled-out 4-d box query: the "corner" subcube of the domain.
  const Coord half = ds.axis_domain() / 2;
  BoxN corner(ds.dims);
  for (auto& iv : corner) iv = {0, half};
  const SampleSummary& aware = *built[0].summary->AsSample();
  const Weight est =
      aware.sample().EstimateSubset([&](const WeightedKey& k) {
        return BoxNContains(corner, ds.point(k.id));
      });
  Weight exact = 0.0;
  for (std::size_t i = 0; i < ds.num_points(); ++i) {
    if (BoxNContains(corner, ds.point(i))) exact += ds.weights[i];
  }
  std::printf("corner subcube: estimate %10.1f   exact %10.1f   error "
              "%.2f%%\n",
              est, exact, 100.0 * (est - exact) / std::max(exact, 1e-9));
  if (!std::isfinite(est) ||
      std::fabs(est - exact) > 0.05 * ds.total_weight()) {
    ok = false;
  }

  if (!ok) {
    std::printf("FAIL: an estimate was non-finite or off-scale\n");
    return 1;
  }
  return 0;
}
